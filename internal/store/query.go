package store

import (
	"fmt"
	"math"
	"sync/atomic"

	"flowmotif/internal/core"
	"flowmotif/internal/motif"
	"flowmotif/internal/temporal"
)

// DefaultChunkEvents is the default per-band buffering granularity of the
// out-of-core query path.
const DefaultChunkEvents = 1 << 16

// QueryOptions parameterizes an out-of-core query.
type QueryOptions struct {
	// ChunkEvents is how many events are streamed off the WAL before the
	// closed anchor band is enumerated and the expired buffer prefix
	// evicted. Peak memory is O(ChunkEvents + events per δ-window); larger
	// chunks amortize graph construction, smaller ones bound memory
	// (default DefaultChunkEvents).
	ChunkEvents int
}

// Visitor receives each maximal instance together with the band graph its
// Arcs/Spans fields index into (instances found out-of-core cannot refer
// to one global graph — there is none). Both are only valid during the
// callback unless retained; return false to stop the query. With
// Params.Workers > 1 the visitor runs concurrently and must be safe for
// concurrent use.
type Visitor func(g *temporal.Graph, in *core.Instance) bool

// Query enumerates every maximal instance of mo under p across the whole
// recorded event history, without materializing the full graph: segments
// stream through core.EnumerateRange in δ-overlapping chunks, exactly as
// the online engine finalizes watermark bands, so the result equals batch
// FindInstances over the full log (see the oracle in query_test.go and the
// root-level store_test.go). visit may be nil to count only.
func (s *Store) Query(mo *motif.Motif, p core.Params, q QueryOptions, visit Visitor) (core.EnumStats, error) {
	return s.QueryRange(mo, p, q, math.MinInt64, math.MaxInt64, visit)
}

// QueryRange is Query restricted to windows anchored within
// [anchorLo, anchorHi]. The sealed segments' [minT, maxT] index headers
// let the scan skip segments that cannot contribute: instance maximality
// still accounts for events up to δ before anchorLo, matching
// core.EnumerateRange semantics.
func (s *Store) QueryRange(mo *motif.Motif, p core.Params, q QueryOptions, anchorLo, anchorHi int64, visit Visitor) (core.EnumStats, error) {
	var total core.EnumStats
	if mo == nil {
		return total, fmt.Errorf("store: nil motif")
	}
	chunk := q.ChunkEvents
	if chunk <= 0 {
		chunk = DefaultChunkEvents
	}
	if anchorLo > anchorHi {
		return total, nil
	}
	// Events below loT cannot influence any in-range window, not even via
	// the backward-extension (maximality) rule; events above hiT cannot
	// belong to any in-range window.
	loT := satSub(anchorLo, p.Delta)
	hiT := satAdd(anchorHi, p.Delta)

	segs, err := s.snapshotSegments()
	if err != nil {
		return total, err
	}

	buf := temporal.NewWindowLog()
	emitted := int64(math.MinInt64) // anchors <= emitted are done
	primed := false
	pending := 0
	// Atomic because with p.Workers > 1 EnumerateRange invokes the band
	// visitor from concurrent worker goroutines.
	var stopped atomic.Bool // visitor returned false: stop after this band

	flushBand := func(hi int64) error {
		if hi > anchorHi {
			hi = anchorHi
		}
		if !primed || hi <= emitted {
			return nil
		}
		lo := satAdd(emitted, 1)
		g, err := buf.BuildGraph(satSub(lo, p.Delta), satAdd(hi, p.Delta))
		if err != nil {
			return fmt.Errorf("store: band graph: %w", err)
		}
		var bandVisit core.Visitor
		if visit != nil {
			bandVisit = func(in *core.Instance) bool {
				if !visit(g, in) {
					stopped.Store(true)
					return false
				}
				return true
			}
		}
		st, err := core.EnumerateRange(g, mo, p, lo, hi, bandVisit)
		addStats(&total, &st)
		if err != nil {
			return err
		}
		emitted = hi
		buf.EvictBefore(satSub(satAdd(hi, 1), p.Delta))
		pending = 0
		return nil
	}

	var scanErr error
	for i := range segs {
		si := &segs[i]
		if si.count == 0 || si.maxT < loT {
			continue // the segment index proves it cannot contribute
		}
		done := false
		_, err := scanSegment(si, 0, func(_ int64, ev temporal.Event) bool {
			if ev.T > hiT {
				done = true
				return false
			}
			if ev.T < loT {
				return true
			}
			if err := buf.Append(ev); err != nil {
				scanErr = fmt.Errorf("store: query scan: %w", err)
				return false
			}
			if !primed {
				emitted = max(satSub(ev.T, 1), satSub(anchorLo, 1))
				primed = true
			}
			pending++
			if pending >= chunk {
				// The watermark ev.T closes every window anchored at or
				// before ev.T-δ-1 (no later event can land inside it).
				if err := flushBand(satSub(ev.T, p.Delta+1)); err != nil {
					scanErr = err
					return false
				}
				if stopped.Load() {
					done = true
					return false
				}
			}
			return true
		})
		if scanErr != nil {
			return total, scanErr
		}
		if err != nil {
			return total, err
		}
		if done {
			break
		}
	}
	// End of input: every remaining window is closed.
	if w, ok := buf.Watermark(); ok && !stopped.Load() {
		if err := flushBand(w); err != nil {
			return total, err
		}
	}
	return total, nil
}

func addStats(dst, src *core.EnumStats) {
	dst.Matches += src.Matches
	dst.Anchors += src.Anchors
	dst.WindowsProcessed += src.WindowsProcessed
	dst.WindowsSkipped += src.WindowsSkipped
	dst.SplitsTried += src.SplitsTried
	dst.PhiPruned += src.PhiPruned
	dst.AvailPruned += src.AvailPruned
	dst.Instances += src.Instances
}

func satAdd(a, b int64) int64 { return temporal.SatAdd(a, b) }

func satSub(a, b int64) int64 { return temporal.SatSub(a, b) }
