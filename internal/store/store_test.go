package store

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"flowmotif/internal/temporal"
)

// genEvents returns n time-ordered events over a small node universe.
func genEvents(seed int64, n int) []temporal.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]temporal.Event, n)
	t := int64(100)
	for i := range evs {
		t += int64(rng.Intn(4))
		evs[i] = temporal.Event{
			From: temporal.NodeID(rng.Intn(40)),
			To:   temporal.NodeID(rng.Intn(40)),
			T:    t,
			F:    1 + rng.Float64()*9,
		}
	}
	return evs
}

// appendAll appends evs in random batch sizes.
func appendAll(t *testing.T, s *Store, evs []temporal.Event, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < len(evs); {
		n := 1 + rng.Intn(37)
		if i+n > len(evs) {
			n = len(evs) - i
		}
		if err := s.Append(evs[i : i+n]); err != nil {
			t.Fatalf("append [%d,%d): %v", i, i+n, err)
		}
		i += n
	}
}

func replayAll(t *testing.T, s *Store, from int64) []temporal.Event {
	t.Helper()
	var out []temporal.Event
	next := from
	if err := s.Replay(from, func(seq int64, ev temporal.Event) bool {
		if seq != next {
			t.Fatalf("replay seq %d, want %d", seq, next)
		}
		next++
		out = append(out, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func eventsEqual(a, b []temporal.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAppendReplayRoundTrip(t *testing.T) {
	evs := genEvents(1, 1000)
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, evs, 2)
	if got := s.Seq(); got != int64(len(evs)) {
		t.Fatalf("Seq = %d, want %d", got, len(evs))
	}
	if got := replayAll(t, s, 0); !eventsEqual(got, evs) {
		t.Fatalf("live replay mismatch: %d events", len(got))
	}
	if got, want := replayAll(t, s, 900), evs[900:]; !eventsEqual(got, want) {
		t.Fatalf("suffix replay mismatch: %d events, want %d", len(got), len(want))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: same contents, appends continue the sequence.
	s2, err := Open(dir, Options{SegmentEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != int64(len(evs)) {
		t.Fatalf("reopened Seq = %d, want %d", got, len(evs))
	}
	if got := replayAll(t, s2, 0); !eventsEqual(got, evs) {
		t.Fatal("reopened replay mismatch")
	}
	more := genEvents(3, 50)
	last := evs[len(evs)-1].T
	for i := range more {
		more[i].T += last
	}
	appendAll(t, s2, more, 4)
	if got := s2.Seq(); got != int64(len(evs)+len(more)) {
		t.Fatalf("Seq after more = %d, want %d", got, len(evs)+len(more))
	}
	if got, want := replayAll(t, s2, int64(len(evs))), more; !eventsEqual(got, want) {
		t.Fatal("appended-after-reopen replay mismatch")
	}
}

func TestSealedSegmentIndexHeaders(t *testing.T) {
	evs := genEvents(5, 500)
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendAll(t, s, evs, 6)

	segs := s.Segments()
	if len(segs) < 5 {
		t.Fatalf("want >= 5 segments at SegmentEvents=100 for %d events, got %d", len(evs), len(segs))
	}
	seq := int64(0)
	idx := 0
	for i, sg := range segs {
		if sg.FirstSeq != seq {
			t.Fatalf("segment %d FirstSeq = %d, want %d", i, sg.FirstSeq, seq)
		}
		if sealed := i < len(segs)-1; sg.Sealed != sealed {
			t.Fatalf("segment %d sealed = %v, want %v", i, sg.Sealed, sealed)
		}
		if sg.Count > 0 {
			lo, hi := evs[idx].T, evs[idx+int(sg.Count)-1].T
			if sg.MinT != lo || sg.MaxT != hi {
				t.Fatalf("segment %d index [%d,%d], want [%d,%d]", i, sg.MinT, sg.MaxT, lo, hi)
			}
		}
		seq += sg.Count
		idx += int(sg.Count)
	}
	if seq != int64(len(evs)) {
		t.Fatalf("segments cover %d events, want %d", seq, len(evs))
	}
}

// activeSegmentPath returns the newest segment file (the append target).
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal", "*.seg"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(paths)
	return paths[len(paths)-1]
}

func TestTornRecordTruncatedOnRecovery(t *testing.T) {
	evs := genEvents(7, 300)
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, evs, 8)
	// Simulate a crash mid-write: chop 13 bytes off the final record,
	// leaving a torn tail. (Close only releases the directory flock;
	// every acknowledged batch was already flushed, as after a crash.)
	s.Close()
	path := activeSegmentPath(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-13); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	want := int64(len(evs) - 1)
	if got := s2.Seq(); got != want {
		t.Fatalf("recovered Seq = %d, want %d (torn record dropped)", got, want)
	}
	if got := replayAll(t, s2, 0); !eventsEqual(got, evs[:want]) {
		t.Fatal("recovered replay mismatch")
	}
	// The store stays writable after recovery.
	next := temporal.Event{From: 1, To: 2, T: evs[len(evs)-1].T + 10, F: 1}
	if err := s2.Append([]temporal.Event{next}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got := s2.Seq(); got != want+1 {
		t.Fatalf("Seq after recovery append = %d, want %d", got, want+1)
	}
}

func TestCorruptRecordDropsTail(t *testing.T) {
	evs := genEvents(9, 100)
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentEvents: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(evs); err != nil {
		t.Fatal(err)
	}
	s.Close() // release the flock; the data is already on disk
	// Flip one payload byte in record 60: recovery must keep [0, 60) and
	// drop everything from the corruption on.
	path := activeSegmentPath(t, dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(segHeaderLen + 60*recLen + 20)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != 60 {
		t.Fatalf("recovered Seq = %d, want 60", got)
	}
	if got := replayAll(t, s2, 0); !eventsEqual(got, evs[:60]) {
		t.Fatal("recovered prefix mismatch")
	}
}

func TestAppendValidation(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append([]temporal.Event{{From: 0, To: 1, T: 100, F: 5}}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ev   temporal.Event
	}{
		{"behind frontier", temporal.Event{From: 0, To: 1, T: 50, F: 1}},
		{"negative node", temporal.Event{From: -1, To: 1, T: 200, F: 1}},
		{"zero flow", temporal.Event{From: 0, To: 1, T: 200, F: 0}},
	}
	for _, c := range cases {
		if err := s.Append([]temporal.Event{c.ev}); err == nil {
			t.Errorf("%s: Append accepted %+v", c.name, c.ev)
		}
	}
	if got := s.Seq(); got != 1 {
		t.Fatalf("rejected batches must not advance Seq: got %d", got)
	}
}

func TestSnapshotWriteLoadFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{KeepSnapshots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(genEvents(11, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}

	type payload struct {
		Tag string `json:"tag"`
	}
	write := func(seq int64, tag string) {
		t.Helper()
		data, _ := json.Marshal(payload{Tag: tag})
		if err := s.WriteSnapshot(seq, data); err != nil {
			t.Fatalf("snapshot at %d: %v", seq, err)
		}
	}
	write(10, "a")
	write(25, "b")
	write(40, "c")

	if err := s.WriteSnapshot(41, nil); err == nil {
		t.Fatal("snapshot beyond the WAL must be rejected")
	}

	snap, err := s.LoadSnapshot()
	if err != nil || snap == nil {
		t.Fatalf("LoadSnapshot: %v, %v", snap, err)
	}
	var p payload
	if json.Unmarshal(snap.Payload, &p) != nil || p.Tag != "c" || snap.Seq != 40 {
		t.Fatalf("newest snapshot = seq %d tag %q, want 40/c", snap.Seq, p.Tag)
	}

	// Corrupt the newest snapshot file: loading falls back to "b".
	if err := os.WriteFile(filepath.Join(dir, "snap", "0000000000000040.snap"), []byte("junk{"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = s.LoadSnapshot()
	if err != nil || snap == nil {
		t.Fatalf("fallback LoadSnapshot: %v, %v", snap, err)
	}
	if json.Unmarshal(snap.Payload, &p) != nil || p.Tag != "b" || snap.Seq != 25 {
		t.Fatalf("fallback snapshot = seq %d tag %q, want 25/b", snap.Seq, p.Tag)
	}

	// Reopen: snapshot metadata is rediscovered from disk, skipping the
	// corrupt newest file — health monitoring must never advertise a
	// checkpoint recovery would not actually use.
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if seq, _, ok := s2.SnapshotInfo(); !ok || seq != 25 {
		t.Fatalf("reopened SnapshotInfo = %d/%v, want 25/true (corrupt newest skipped)", seq, ok)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(genEvents(13, 10)); err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int64{2, 4, 6, 8} {
		if err := s.WriteSnapshot(seq, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := filepath.Glob(filepath.Join(dir, "snap", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retained %d snapshots, want 2: %v", len(paths), paths)
	}
}

func TestWriteErrorFailsStop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := genEvents(21, 20)
	if err := s.Append(evs[:10]); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment's fd: the next flush must fail, and the
	// store must go fail-stop instead of wedging retries on a confusing
	// frontier error over a half-applied batch.
	s.active.f.Close()
	if err := s.Append(evs[10:]); err == nil {
		t.Fatal("append over a broken fd succeeded")
	}
	if err := s.Append(evs[10:]); err == nil || !strings.Contains(err.Error(), "failed by earlier write error") {
		t.Fatalf("retry after failure: %v, want sticky fail-stop error", err)
	}
	if err := s.Replay(0, func(int64, temporal.Event) bool { return true }); err == nil {
		t.Fatal("replay on a failed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close of failed store: %v", err)
	}
	// Reopen recovers whatever was durable; the store is usable again.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != 10 {
		t.Fatalf("recovered Seq = %d, want 10", got)
	}
	if err := s2.Append(evs[10:]); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked data dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestInterruptedRollHealsOnOpen(t *testing.T) {
	// Simulate a crash between sealing a segment and creating its
	// successor by clearing the sealed flag of a non-final segment: Open
	// must re-seal it and keep the sequence numbering intact.
	evs := genEvents(15, 200)
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentEvents: 50})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, evs, 16)
	s.Close()

	paths, err := filepath.Glob(filepath.Join(dir, "wal", "*.seg"))
	if err != nil || len(paths) < 3 {
		t.Fatalf("want >= 3 segments, got %v (%v)", paths, err)
	}
	sort.Strings(paths)
	f, err := os.OpenFile(paths[1], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0, 0, 0, 0}, 8); err != nil { // sealed flag
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{SegmentEvents: 50})
	if err != nil {
		t.Fatalf("heal open: %v", err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != int64(len(evs)) {
		t.Fatalf("healed Seq = %d, want %d", got, len(evs))
	}
	if got := replayAll(t, s2, 0); !eventsEqual(got, evs) {
		t.Fatal("healed replay mismatch")
	}
}
