package flowmotif

import (
	"math"
	"path/filepath"
	"testing"
)

// paperEvents is the running example of the paper (Figure 2).
func paperEvents() []Event {
	return []Event{
		{From: 0, To: 1, T: 13, F: 5},
		{From: 0, To: 1, T: 15, F: 7},
		{From: 2, To: 0, T: 10, F: 10},
		{From: 3, To: 0, T: 1, F: 2},
		{From: 3, To: 0, T: 3, F: 5},
		{From: 3, To: 2, T: 11, F: 10},
		{From: 1, To: 2, T: 18, F: 20},
		{From: 2, To: 3, T: 19, F: 5},
		{From: 2, To: 3, T: 21, F: 4},
		{From: 1, To: 3, T: 23, F: 7},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := NewGraph(paperEvents())
	if err != nil {
		t.Fatal(err)
	}
	tri, err := ParseMotif("M(3,3)")
	if err != nil {
		t.Fatal(err)
	}

	// The paper's Figure 4(a): the only instance at δ=10, φ=7.
	ins, err := FindInstances(g, tri, Params{Delta: 10, Phi: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Flow != 10 {
		t.Fatalf("instances = %v", ins)
	}
	if err := Validate(g, tri, 10, 7, ins[0]); err != nil {
		t.Error(err)
	}
	if ok, _ := IsMaximal(g, tri, 10, ins[0]); !ok {
		t.Error("instance not maximal")
	}

	n, err := CountInstances(g, tri, Params{Delta: 10, Phi: 7})
	if err != nil || n != 1 {
		t.Errorf("CountInstances = %d, %v", n, err)
	}

	top, err := TopOne(g, tri, 10)
	if err != nil {
		t.Fatal(err)
	}
	if top == nil || top.Flow != 10 {
		t.Errorf("TopOne = %v", top)
	}
	dp, err := TopOneFlow(g, tri, 10)
	if err != nil || math.Abs(dp-10) > 1e-12 {
		t.Errorf("TopOneFlow = %v, %v", dp, err)
	}
	f, in, err := TopOneInstanceDP(g, tri, 10)
	if err != nil || f != 10 || in == nil {
		t.Errorf("TopOneInstanceDP = %v, %v, %v", f, in, err)
	}

	topk, err := TopK(g, tri, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(topk) == 0 || topk[0].Flow != 10 {
		t.Errorf("TopK = %v", topk)
	}

	if got := CountStructuralMatches(g, tri); got != 6 {
		t.Errorf("structural matches = %d, want 6", got)
	}
	streamed := int64(0)
	StructuralMatches(g, tri, func(m *Match) bool { streamed++; return true })
	if streamed != 6 {
		t.Errorf("streamed matches = %d", streamed)
	}
}

func TestPublicAPIMotifConstructors(t *testing.T) {
	if m, err := Chain(4); err != nil || m.NumEdges() != 3 {
		t.Errorf("Chain(4) = %v, %v", m, err)
	}
	if m, err := Cycle(5); err != nil || m.NumEdges() != 5 || !m.IsCyclic() {
		t.Errorf("Cycle(5) = %v, %v", m, err)
	}
	if m, err := MotifFromPath(0, 1, 2, 3, 1); err != nil || m.Name() != "M(4,4)" {
		t.Errorf("MotifFromPath = %v, %v", m, err)
	}
	if len(Catalog()) != 10 {
		t.Error("catalog size wrong")
	}
}

func TestPublicAPIGeneratorsAndIO(t *testing.T) {
	evs, err := GenerateBitcoin(BitcoinConfig{Nodes: 200, SeedTxns: 500, Duration: 86400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEvents() < 500 {
		t.Errorf("bitcoin events = %d", g.NumEvents())
	}

	fb, err := GenerateFacebook(FacebookConfig{Nodes: 100, Bursts: 200, Cascades: 100, Duration: 86400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) == 0 {
		t.Error("facebook empty")
	}
	px, err := GeneratePassenger(PassengerConfig{Zones: 50, Trips: 500, Days: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(px) == 0 {
		t.Error("passenger empty")
	}

	path := filepath.Join(t.TempDir(), "g.csv")
	if err := SaveCSV(path, paperEvents(), nil); err != nil {
		t.Fatal(err)
	}
	back, _, err := LoadCSV(path, CSVOptions{NumericIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(paperEvents()) {
		t.Errorf("csv round trip: %d events", len(back))
	}
}

func TestPublicAPISignificance(t *testing.T) {
	evs, err := GenerateBitcoin(BitcoinConfig{Nodes: 150, SeedTxns: 1500, Duration: 7 * 86400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}
	// φ=5 is the dataset's paper-default threshold; at much lower φ nearly
	// every event qualifies individually and the permuted null can match
	// or beat the real count (cascade flows decay along chains).
	mo, _ := ParseMotif("M(3,2)")
	res, err := Significance(g, mo, Params{Delta: 600, Phi: 5}, SignificanceConfig{Runs: 5, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RandomCounts) != 5 {
		t.Errorf("runs = %d", len(res.RandomCounts))
	}
	// The cascade generator transfers flow along chains, so the real count
	// must exceed the permuted mean (positive z-score).
	if res.Real > 0 && res.ZScore <= 0 {
		t.Errorf("z-score = %v (real=%d mean=%v); expected significance", res.ZScore, res.Real, res.Mean)
	}
}

func TestPublicAPIAnalytics(t *testing.T) {
	g, err := NewGraph(paperEvents())
	if err != nil {
		t.Fatal(err)
	}
	tri, _ := ParseMotif("M(3,3)")
	acts, err := GroupByMatch(g, tri, Params{Delta: 10, Phi: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Instances != 1 || acts[0].MaxFlow != 10 {
		t.Errorf("GroupByMatch = %+v", acts)
	}
	tl, err := InstanceTimeline(g, tri, Params{Delta: 10, Phi: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for _, b := range tl {
		n += b.Instances
	}
	if n != 1 {
		t.Errorf("timeline total = %d, want 1", n)
	}
}

func TestPublicAPIPerMatchPerWindow(t *testing.T) {
	g, err := NewGraph(paperEvents())
	if err != nil {
		t.Fatal(err)
	}
	tri, _ := ParseMotif("M(3,3)")
	calls := 0
	if err := TopOnePerMatch(g, tri, 10, func(mt *Match, flow float64) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("per-match calls = %d, want 6", calls)
	}
	if err := TopOnePerWindow(g, tri, 10, func(mt *Match, ts int64, flow float64) {}); err != nil {
		t.Fatal(err)
	}
}
