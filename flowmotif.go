// Package flowmotif finds network flow motifs in temporal interaction
// networks, implementing the algorithms of Kosyfaki, Mamoulis, Pitoura and
// Tsaparas, "Flow Motifs in Interaction Networks", EDBT 2019
// (arXiv:1810.08408).
//
// An interaction network is a directed multigraph whose edges carry a
// timestamp and a positive flow value (money, messages, passengers, ...).
// A flow motif M = (GM, δ, φ) is a small directed graph whose edges form a
// totally ordered spanning path; an instance of M maps every motif edge to
// a non-empty *set* of network edges between the same node pair such that
// the sets respect the order, everything happens within a window of
// duration δ, and every set aggregates at least φ units of flow. The
// library enumerates all maximal instances, finds the top-k instances by
// flow, computes the top-1 via dynamic programming, and measures motif
// significance against flow-permuted null models.
//
// # Quick start
//
//	g, err := flowmotif.NewGraph([]flowmotif.Event{
//		{From: 0, To: 1, T: 10, F: 5},
//		{From: 1, To: 2, T: 12, F: 4},
//		{From: 2, To: 0, T: 15, F: 6},
//	})
//	if err != nil { ... }
//	tri, _ := flowmotif.ParseMotif("M(3,3)") // triangle 0→1→2→0
//	instances, err := flowmotif.FindInstances(g, tri, flowmotif.Params{Delta: 10, Phi: 3})
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture and the paper-reproduction experiment index.
package flowmotif

import (
	"flowmotif/internal/analytics"
	"flowmotif/internal/core"
	"flowmotif/internal/dataset"
	"flowmotif/internal/gen"
	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/signif"
	"flowmotif/internal/temporal"
)

// Re-exported core types. The aliases make the internal implementation
// packages usable through this single public import path.
type (
	// NodeID identifies a vertex of the interaction network.
	NodeID = temporal.NodeID
	// Event is one interaction: From sent F units of flow to To at time T.
	Event = temporal.Event
	// Point is one (t, f) element of an arc's interaction time series.
	Point = temporal.Point
	// Graph is the immutable time-series interaction graph GT.
	Graph = temporal.Graph
	// GraphStats summarizes a graph (the paper's Table 3 columns).
	GraphStats = temporal.Stats
	// Interner maps string node labels onto dense NodeIDs.
	Interner = temporal.Interner

	// Motif is a flow motif graph GM with its ordered spanning path.
	Motif = motif.Motif

	// Match is a structural match of a motif (phase P1 output).
	Match = match.Match

	// Params carries the δ/φ thresholds and execution options.
	Params = core.Params
	// Span is a contiguous edge-set within an arc's time series.
	Span = core.Span
	// Instance is one maximal flow-motif instance.
	Instance = core.Instance
	// EnumStats counts the work done by an enumeration.
	EnumStats = core.EnumStats

	// SignificanceConfig controls randomized significance evaluation.
	SignificanceConfig = signif.Config
	// SignificanceResult reports z-score, p-value and box-plot statistics.
	SignificanceResult = signif.Result

	// CSVOptions controls dataset parsing.
	CSVOptions = dataset.CSVOptions

	// MatchActivity aggregates the instances of one structural match.
	MatchActivity = analytics.MatchActivity
	// TimelineBucket aggregates instance activity within one time bucket.
	TimelineBucket = analytics.TimelineBucket

	// BitcoinConfig parameterizes the bitcoin-like dataset generator.
	BitcoinConfig = gen.BitcoinConfig
	// FacebookConfig parameterizes the facebook-like dataset generator.
	FacebookConfig = gen.FacebookConfig
	// PassengerConfig parameterizes the passenger-flow dataset generator.
	PassengerConfig = gen.PassengerConfig
)

// NewGraph builds a time-series graph from events, inferring the node count.
func NewGraph(events []Event) (*Graph, error) { return temporal.NewGraph(events) }

// NewGraphWithNodes builds a graph over a fixed node universe 0..n-1.
func NewGraphWithNodes(n int, events []Event) (*Graph, error) {
	return temporal.NewGraphWithNodes(n, events)
}

// NewInterner returns an empty node-label interner.
func NewInterner() *Interner { return temporal.NewInterner() }

// ParseMotif builds a motif from "0-1-2-0", "chain4", "cycle3" or a catalog
// name such as "M(4,4)B".
func ParseMotif(s string) (*Motif, error) { return motif.Parse(s) }

// MotifFromPath builds a motif from its spanning-path vertex sequence.
func MotifFromPath(seq ...int) (*Motif, error) { return motif.FromPath(seq...) }

// Chain returns the n-vertex chain motif.
func Chain(n int) (*Motif, error) { return motif.Chain(n) }

// Cycle returns the n-vertex cycle motif.
func Cycle(n int) (*Motif, error) { return motif.Cycle(n) }

// Catalog returns the paper's ten benchmark motifs (Figure 3).
func Catalog() []*Motif { return motif.Catalog() }

// StructuralMatches streams phase-P1 structural matches of mo in g. The
// callback's Match is reused; clone it to retain. Returns the match count.
func StructuralMatches(g *Graph, mo *Motif, fn func(*Match) bool) int64 {
	return match.Stream(g, mo, fn)
}

// CountStructuralMatches counts phase-P1 matches (paper Table 4).
func CountStructuralMatches(g *Graph, mo *Motif) int64 { return match.Count(g, mo) }

// FindInstances returns every maximal instance of mo in g under p.
// For very large result sets prefer EnumerateInstances.
func FindInstances(g *Graph, mo *Motif, p Params) ([]*Instance, error) {
	return core.Collect(g, mo, p, 0)
}

// EnumerateInstances streams maximal instances to visit (return false to
// stop). With p.Workers > 1 the visitor must be concurrency-safe.
func EnumerateInstances(g *Graph, mo *Motif, p Params, visit func(*Instance) bool) (EnumStats, error) {
	return core.Enumerate(g, mo, p, visit)
}

// CountInstances counts maximal instances without materializing them.
func CountInstances(g *Graph, mo *Motif, p Params) (int64, error) {
	n, _, err := core.Count(g, mo, p)
	return n, err
}

// TopK returns the k maximal instances with the highest flow under delta
// (φ is replaced by the floating threshold of the paper's §5).
func TopK(g *Graph, mo *Motif, delta int64, k int) ([]*Instance, error) {
	res, _, err := core.TopK(g, mo, delta, k, 1)
	return res, err
}

// TopOne returns the maximal instance with the highest flow (nil if none).
func TopOne(g *Graph, mo *Motif, delta int64) (*Instance, error) {
	in, _, err := core.TopOne(g, mo, delta, 1)
	return in, err
}

// TopOneFlow computes the maximum instance flow with the paper's
// dynamic-programming module (Algorithm 2), without materializing
// instances. It returns 0 when the motif has no instance.
func TopOneFlow(g *Graph, mo *Motif, delta int64) (float64, error) {
	f, _, err := core.TopOneDPFast(g, mo, delta)
	return f, err
}

// TopOneInstanceDP reconstructs an instance attaining the maximum flow via
// DP backtracking (the instance is valid but not necessarily maximal).
func TopOneInstanceDP(g *Graph, mo *Motif, delta int64) (float64, *Instance, error) {
	return core.TopOneDPInstance(g, mo, delta)
}

// TopOnePerMatch reports the best instance flow per structural match
// (paper §5.1 extensibility).
func TopOnePerMatch(g *Graph, mo *Motif, delta int64, fn func(mt *Match, flow float64)) error {
	return core.TopOnePerMatch(g, mo, delta, fn)
}

// TopOnePerWindow reports the best instance flow per window position
// (paper §5.1 extensibility).
func TopOnePerWindow(g *Graph, mo *Motif, delta int64, fn func(mt *Match, windowStart int64, flow float64)) error {
	return core.TopOnePerWindow(g, mo, delta, fn)
}

// Validate checks an instance against Definition 3.2.
func Validate(g *Graph, mo *Motif, delta int64, phi float64, in *Instance) error {
	return core.Validate(g, mo, delta, phi, in)
}

// IsMaximal checks Definition 3.3, returning a reason when not maximal.
func IsMaximal(g *Graph, mo *Motif, delta int64, in *Instance) (bool, string) {
	return core.IsMaximal(g, mo, delta, in)
}

// GroupByMatch groups all maximal instances per structural match, ordered
// by activity (the paper's §7 analysis of the most active vertex groups).
func GroupByMatch(g *Graph, mo *Motif, p Params) ([]MatchActivity, error) {
	return analytics.GroupByMatch(g, mo, p)
}

// InstanceTimeline histograms maximal instances by start time into dense
// buckets of the given width (the paper's §7 activity-over-time analysis).
func InstanceTimeline(g *Graph, mo *Motif, p Params, bucket int64) ([]TimelineBucket, error) {
	return analytics.Timeline(g, mo, p, bucket)
}

// Significance evaluates mo against cfg.Runs flow-permuted null networks
// (paper §6.3, Figure 14).
func Significance(g *Graph, mo *Motif, p Params, cfg SignificanceConfig) (SignificanceResult, error) {
	return signif.Evaluate(g, mo, p, cfg)
}

// GenerateBitcoin synthesizes a bitcoin-like interaction network.
func GenerateBitcoin(cfg BitcoinConfig) ([]Event, error) { return gen.Bitcoin(cfg) }

// GenerateFacebook synthesizes a facebook-like interaction network.
func GenerateFacebook(cfg FacebookConfig) ([]Event, error) { return gen.Facebook(cfg) }

// GeneratePassenger synthesizes a passenger-flow network.
func GeneratePassenger(cfg PassengerConfig) ([]Event, error) { return gen.Passenger(cfg) }

// LoadCSV reads a CSV/TSV dataset (from,to,time,flow per record).
func LoadCSV(path string, opts CSVOptions) ([]Event, *Interner, error) {
	return dataset.ReadCSVFile(path, opts)
}

// SaveCSV writes events as CSV; labels may be nil for numeric ids.
func SaveCSV(path string, evs []Event, labels func(NodeID) string) error {
	return dataset.WriteCSVFile(path, evs, labels)
}
