package flowmotif

import (
	"flowmotif/internal/stream"
)

// Streaming re-exports: online motif detection over event streams
// (internal/stream). An engine ingests timestamp-ordered events, maintains
// a sliding δ-retention window, and emits each maximal motif instance to a
// sink the moment its window closes — producing exactly the instance set
// FindInstances reports on the equivalent batch graph. cmd/flowmotifd
// serves an engine over HTTP.
type (
	// StreamSubscription asks for one motif under one (δ, φ) setting.
	StreamSubscription = stream.Subscription
	// StreamConfig parameterizes a streaming engine.
	StreamConfig = stream.Config
	// StreamEngine detects flow motifs online.
	StreamEngine = stream.Engine
	// StreamStats reports engine progress.
	StreamStats = stream.Stats
	// Detection is one finalized maximal instance, self-contained.
	Detection = stream.Detection
	// DetectionSink receives detections as windows close.
	DetectionSink = stream.Sink
	// FuncSink adapts a function to the DetectionSink interface.
	FuncSink = stream.FuncSink
	// MultiSink fans detections out to several sinks.
	MultiSink = stream.MultiSink
	// MemorySink retains the most recent detections in a bounded ring.
	MemorySink = stream.MemorySink
	// TopKSink keeps the best detections per subscription by flow.
	TopKSink = stream.TopKSink
	// StreamSnapshot is the serializable state of a StreamEngine; restore
	// it into a fresh engine and replay the later events to recover an
	// interrupted run exactly (see EventStore for the durable pipeline).
	StreamSnapshot = stream.EngineSnapshot
)

// NewStreamEngine builds a streaming detector over the given subscriptions;
// sink may be nil to discard detections (counted in Stats only).
func NewStreamEngine(cfg StreamConfig, sink DetectionSink) (*StreamEngine, error) {
	return stream.NewEngine(cfg, sink)
}

// NewMemorySink retains up to capacity recent detections.
func NewMemorySink(capacity int) *MemorySink { return stream.NewMemorySink(capacity) }

// NewTopKSink keeps the k highest-flow detections per subscription.
func NewTopKSink(k int) *TopKSink { return stream.NewTopKSink(k) }
