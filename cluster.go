package flowmotif

import (
	"flowmotif/internal/cluster"
)

// Cluster re-exports: horizontal scale-out for motif serving
// (internal/cluster). A coordinator shards the subscription set across N
// member engines by rendezvous hashing, replicates every time-ordered
// ingest batch to all of them through an asynchronous sequence-numbered
// pipeline (Ingest acks once the batch is in the replication log;
// per-member queues drain it with coalescing, idempotent seq-tagged
// resends, and backpressure — Drain is the apply barrier, Close stops
// the pipeline), and answers queries by scatter-gather: /instances
// concatenation with watermark alignment and an exact distributed top-k
// merge, each answer tagged with a Gather status (started / degraded).
// Members can join, drain, and fail at runtime; subscriptions move live
// via handoffs (finalization bound + catch-up events + sink state), so
// the cluster serves exactly the instance set of a single engine with
// the same subscriptions. cmd/flowmotifd serves a coordinator with
// -cluster-coordinator and members with -member.
type (
	// ClusterCoordinator shards subscriptions across member engines.
	ClusterCoordinator = cluster.Coordinator
	// ClusterConfig parameterizes a coordinator.
	ClusterConfig = cluster.Config
	// ClusterMember is one shard engine as the coordinator sees it.
	ClusterMember = cluster.Member
	// ClusterLocalMember is the in-process shard implementation.
	ClusterLocalMember = cluster.LocalMember
	// ClusterLocalOptions parameterizes an in-process shard.
	ClusterLocalOptions = cluster.LocalOptions
	// ClusterHTTPMember drives a remote flowmotifd -member daemon.
	ClusterHTTPMember = cluster.HTTPMember
	// ClusterHandoff moves one subscription between members.
	ClusterHandoff = cluster.Handoff
	// ClusterBatch is one seq-tagged replication unit (idempotent resend).
	ClusterBatch = cluster.Batch
	// ClusterGather is a scatter-gather answer's status: aligned
	// watermark, started (any shard has data), degraded (answer may be
	// incomplete).
	ClusterGather = cluster.Gather
	// ClusterStats snapshots cluster progress and per-shard health,
	// including replication-pipeline lag.
	ClusterStats = cluster.ClusterStats
)

// NewCluster builds a coordinator over the given members and places the
// subscriptions by rendezvous hashing.
func NewCluster(cfg ClusterConfig) (*ClusterCoordinator, error) {
	return cluster.New(cfg)
}

// NewClusterLocalMember builds an empty in-process shard; the coordinator
// places subscriptions onto it.
func NewClusterLocalMember(id string, opts ClusterLocalOptions) (*ClusterLocalMember, error) {
	return cluster.NewLocalMember(id, opts)
}

// NewClusterHTTPMember builds a client for a remote member daemon.
func NewClusterHTTPMember(id, baseURL string) *ClusterHTTPMember {
	return cluster.NewHTTPMember(id, baseURL, nil)
}

// ClusterPlacement predicts the rendezvous owner of raw placement keys
// over a member set. Note a coordinator hashes subscriptions by their
// motif's shape (so same-shape subscriptions co-locate and share their
// shard's evaluation plan; DESIGN.md §11) — use ClusterPlacementOf to
// preview where actual subscriptions land.
func ClusterPlacement(subIDs, members []string) map[string]string {
	return cluster.Placement(subIDs, members)
}

// ClusterPlacementOf predicts, per subscription id, the member a
// coordinator will place it on under the group-aware (motif-shape) key —
// e.g. to preview the moves a membership change will cause.
func ClusterPlacementOf(subs []StreamSubscription, members []string) map[string]string {
	return cluster.PlacementOf(subs, members)
}
