// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at the "small" dataset scale, plus ablations for the design choices
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers differ from the paper (different hardware, language and
// dataset scale); the shapes — who wins, monotonicity in δ/φ, growth with
// data size — are the reproduction target (see EXPERIMENTS.md).
package flowmotif

import (
	"fmt"
	"sort"
	"testing"

	"flowmotif/internal/core"
	"flowmotif/internal/harness"
	"flowmotif/internal/join"
	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/signif"
	"flowmotif/internal/store"
	"flowmotif/internal/stream"
	"flowmotif/internal/temporal"
)

const benchScale = harness.Small

// benchMotifs is the Figure-3 catalog used throughout the evaluation.
var benchMotifs = motif.Catalog()

// fastMotifs is a representative subset (chain/triangle/long chain) for the
// sweep-heavy figures, keeping the full `-bench=.` run in minutes.
var fastMotifs = []*motif.Motif{
	motif.MustPath(0, 1, 2).Named("M(3,2)"),
	motif.MustPath(0, 1, 2, 0).Named("M(3,3)"),
	motif.MustPath(0, 1, 2, 3).Named("M(4,3)"),
	motif.MustPath(0, 1, 2, 3, 0).Named("M(4,4)A"),
}

// BenchmarkTable3Stats regenerates Table 3 (dataset statistics).
func BenchmarkTable3Stats(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		b.Run(ds.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := ds.G.Stats()
				if st.Events == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkTable4PhaseP1 regenerates Table 4: structural-match counting
// (phase P1) per motif and dataset.
func BenchmarkTable4PhaseP1(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, mo := range benchMotifs {
			b.Run(ds.Name+"/"+mo.Name(), func(b *testing.B) {
				var n int64
				for i := 0; i < b.N; i++ {
					n = match.Count(ds.G, mo)
				}
				b.ReportMetric(float64(n), "matches")
			})
		}
	}
}

// BenchmarkFig8TwoPhaseVsJoin regenerates Figure 8: the two-phase
// enumeration against the join baseline at default δ/φ.
func BenchmarkFig8TwoPhaseVsJoin(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		p := core.Params{Delta: ds.Delta, Phi: ds.Phi}
		for _, mo := range fastMotifs {
			b.Run(ds.Name+"/"+mo.Name()+"/two-phase", func(b *testing.B) {
				var n int64
				for i := 0; i < b.N; i++ {
					n, _, _ = core.Count(ds.G, mo, p)
				}
				b.ReportMetric(float64(n), "instances")
			})
			b.Run(ds.Name+"/"+mo.Name()+"/join", func(b *testing.B) {
				var n int64
				for i := 0; i < b.N; i++ {
					n, _, _ = join.Count(ds.G, mo, p, join.Options{})
				}
				b.ReportMetric(float64(n), "instances")
			})
		}
	}
}

// BenchmarkFig9DeltaSweep regenerates Figure 9: enumeration across the δ
// sweep at the default φ.
func BenchmarkFig9DeltaSweep(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, delta := range ds.DeltaSweep {
			for _, mo := range fastMotifs {
				b.Run(fmt.Sprintf("%s/delta=%d/%s", ds.Name, delta, mo.Name()), func(b *testing.B) {
					var n int64
					for i := 0; i < b.N; i++ {
						n, _, _ = core.Count(ds.G, mo, core.Params{Delta: delta, Phi: ds.Phi})
					}
					b.ReportMetric(float64(n), "instances")
				})
			}
		}
	}
}

// BenchmarkFig10PhiSweep regenerates Figure 10: enumeration across the φ
// sweep at the default δ.
func BenchmarkFig10PhiSweep(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, phi := range ds.PhiSweep {
			for _, mo := range fastMotifs {
				b.Run(fmt.Sprintf("%s/phi=%g/%s", ds.Name, phi, mo.Name()), func(b *testing.B) {
					var n int64
					for i := 0; i < b.N; i++ {
						n, _, _ = core.Count(ds.G, mo, core.Params{Delta: ds.Delta, Phi: phi})
					}
					b.ReportMetric(float64(n), "instances")
				})
			}
		}
	}
}

// BenchmarkFig11TopK regenerates Figure 11: top-k search (k up to 500) at
// the default δ with φ replaced by the floating threshold.
func BenchmarkFig11TopK(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, k := range []int{1, 10, 100, 500} {
			mo := fastMotifs[0]
			b.Run(fmt.Sprintf("%s/k=%d/%s", ds.Name, k, mo.Name()), func(b *testing.B) {
				var kth float64
				for i := 0; i < b.N; i++ {
					res, _, err := core.TopK(ds.G, mo, ds.Delta, k, 1)
					if err != nil {
						b.Fatal(err)
					}
					if len(res) > 0 {
						kth = res[len(res)-1].Flow
					}
				}
				b.ReportMetric(kth, "kth-flow")
			})
		}
	}
}

// BenchmarkFig12TopOne regenerates Figure 12: top-1 via the enumeration
// with a floating threshold versus the DP module (faithful and optimized).
func BenchmarkFig12TopOne(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, mo := range fastMotifs {
			b.Run(ds.Name+"/"+mo.Name()+"/topk1", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.TopK(ds.G, mo, ds.Delta, 1, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(ds.Name+"/"+mo.Name()+"/dp", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.TopOneDP(ds.G, mo, ds.Delta); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(ds.Name+"/"+mo.Name()+"/dp-fast", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := core.TopOneDPFast(ds.G, mo, ds.Delta); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig13Scalability regenerates Figure 13: enumeration over growing
// time-prefix samples of each dataset.
func BenchmarkFig13Scalability(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		for _, pf := range ds.Prefixes {
			g := ds.PrefixGraph(pf)
			mo := fastMotifs[0]
			b.Run(fmt.Sprintf("%s/%s/%s", ds.Name, pf.Label, mo.Name()), func(b *testing.B) {
				var n int64
				for i := 0; i < b.N; i++ {
					n, _, _ = core.Count(g, mo, core.Params{Delta: ds.Delta, Phi: ds.Phi})
				}
				b.ReportMetric(float64(n), "instances")
			})
		}
	}
}

// BenchmarkFig14Significance regenerates Figure 14: significance against
// flow-permuted networks (fewer runs than the paper's 20 to keep the bench
// bounded; cmd/experiments uses the full 20).
func BenchmarkFig14Significance(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		mo := fastMotifs[1] // the triangle: the paper's cyclic-flow headline
		b.Run(ds.Name+"/"+mo.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := signif.Evaluate(ds.G, mo, core.Params{Delta: ds.Delta, Phi: ds.Phi},
					signif.Config{Runs: 5, Seed: 7, Workers: 5})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ZScore, "z-score")
			}
		})
	}
}

// BenchmarkAblationAvailPrune measures the flow-availability pruning (an
// optimization beyond the paper's Algorithm 1); results are identical with
// it disabled.
func BenchmarkAblationAvailPrune(b *testing.B) {
	ds := harness.Bitcoin(benchScale)
	mo := fastMotifs[2] // M(4,3)
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.Params{Delta: ds.Delta, Phi: ds.Phi, DisableAvailPrune: disabled}
				if _, _, err := core.Count(ds.G, mo, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers measures the parallel speedup of the enumeration
// over structural matches.
func BenchmarkAblationWorkers(b *testing.B) {
	ds := harness.Bitcoin(benchScale)
	mo := fastMotifs[2]
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.Params{Delta: ds.Delta, Phi: ds.Phi, Workers: w}
				if _, _, err := core.Count(ds.G, mo, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamIngest measures steady-state streaming ingestion
// (internal/stream, the flowmotifd hot path) in events per second: each
// iteration replays the whole dataset as one stream pass in 512-event
// batches, with timestamps shifted forward per pass so the engine keeps
// running against the same live window instead of restarting.
func BenchmarkStreamIngest(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		evs := ds.G.Events()
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
		minT, maxT := ds.G.TimeSpan()
		span := maxT - minT + ds.Delta + 1

		for _, cfg := range []struct {
			name string
			subs []stream.Subscription
		}{
			{"1sub", []stream.Subscription{
				{ID: "tri", Motif: fastMotifs[1], Delta: ds.Delta, Phi: ds.Phi},
			}},
			{"4sub", []stream.Subscription{
				{ID: "m32", Motif: fastMotifs[0], Delta: ds.Delta, Phi: ds.Phi},
				{ID: "m33", Motif: fastMotifs[1], Delta: ds.Delta, Phi: ds.Phi},
				{ID: "m43", Motif: fastMotifs[2], Delta: ds.Delta, Phi: ds.Phi},
				{ID: "m44a", Motif: fastMotifs[3], Delta: ds.Delta, Phi: ds.Phi},
			}},
		} {
			b.Run(ds.Name+"/"+cfg.name, func(b *testing.B) {
				var detections int64
				eng, err := stream.NewEngine(stream.Config{Subs: cfg.subs},
					stream.FuncSink(func(*stream.Detection) { detections++ }))
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]temporal.Event, 0, 512)
				b.ResetTimer()
				for pass := 0; pass < b.N; pass++ {
					offset := int64(pass) * span
					for lo := 0; lo < len(evs); lo += 512 {
						hi := lo + 512
						if hi > len(evs) {
							hi = len(evs)
						}
						batch = batch[:0]
						for _, e := range evs[lo:hi] {
							e.T += offset
							batch = append(batch, e)
						}
						if _, err := eng.Ingest(batch); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				total := float64(b.N) * float64(len(evs))
				b.ReportMetric(total/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(detections)/float64(b.N), "detections/pass")
				b.ReportMetric(float64(eng.Stats().EventsRetained), "retained")
			})
		}
	}
}

// BenchmarkStreamIngestManySubs measures the shared-evaluation planner
// (DESIGN.md §11) across subscription counts: N subscriptions either all
// watching one motif shape under distinct φ (the planner's best case — one
// phase-P1 walk and one snapshot serve all N) or cycling through the
// ten-shape catalog. The /baseline variants run the pre-planner
// per-subscription rebuild (stream.Config.DisableSharedPlanner) for
// comparison; 1000-sub variants use a shorter stream to keep `-benchtime
// 1x` smoke runs bounded.
func BenchmarkStreamIngestManySubs(b *testing.B) {
	ds := harness.Bitcoin(benchScale)
	evs := ds.G.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	minT, maxT := ds.G.TimeSpan()
	span := maxT - minT + ds.Delta + 1

	for _, n := range []int{1, 10, 100, 1000} {
		events := evs
		if n >= 1000 && len(events) > len(evs)/5 {
			events = events[:len(evs)/5]
		}
		for _, mode := range []struct {
			name     string
			shared   bool
			baseline bool
		}{
			{"shared-shape", true, false},
			{"shared-shape/baseline", true, true},
			{"distinct-shapes", false, false},
		} {
			if mode.baseline && n > 100 {
				continue // linear in n; the 100-sub ratio already tells the story
			}
			b.Run(fmt.Sprintf("subs=%d/%s", n, mode.name), func(b *testing.B) {
				eng, err := stream.NewEngine(stream.Config{
					Subs:                 stream.BenchSubs(n, mode.shared, ds.Delta, ds.Phi),
					DisableSharedPlanner: mode.baseline,
				}, nil)
				if err != nil {
					b.Fatal(err)
				}
				batch := make([]temporal.Event, 0, 2048)
				b.ResetTimer()
				for pass := 0; pass < b.N; pass++ {
					offset := int64(pass) * span
					for lo := 0; lo < len(events); lo += 2048 {
						hi := lo + 2048
						if hi > len(events) {
							hi = len(events)
						}
						batch = batch[:0]
						for _, e := range events[lo:hi] {
							e.T += offset
							batch = append(batch, e)
						}
						if _, err := eng.Ingest(batch); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				st := eng.Stats()
				total := float64(b.N) * float64(len(events))
				b.ReportMetric(total/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(st.SnapshotReuse, "bands/snapshot")
				b.ReportMetric(float64(st.MatchesShared)/float64(b.N), "matches-shared/pass")
			})
		}
	}
}

// BenchmarkStoreAppend measures durable WAL ingestion (the flowmotifd
// -data-dir hot path) in events per second: each iteration appends the
// whole dataset in 512-event batches, timestamps shifted forward per pass
// so the store's time frontier keeps advancing. Segments roll at the
// default size; fsync is off (the serving default).
func BenchmarkStoreAppend(b *testing.B) {
	ds := harness.Bitcoin(benchScale)
	evs := ds.G.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	minT, maxT := ds.G.TimeSpan()
	span := maxT - minT + 1

	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := make([]temporal.Event, 0, 512)
	b.ResetTimer()
	for pass := 0; pass < b.N; pass++ {
		offset := int64(pass) * span
		for lo := 0; lo < len(evs); lo += 512 {
			hi := lo + 512
			if hi > len(evs) {
				hi = len(evs)
			}
			batch = batch[:0]
			for _, e := range evs[lo:hi] {
				e.T += offset
				batch = append(batch, e)
			}
			if err := st.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(evs))
	b.ReportMetric(total/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkStoreReplay measures WAL recovery speed (the flowmotifd
// restart path) in events per second over a pre-populated store.
func BenchmarkStoreReplay(b *testing.B) {
	ds := harness.Bitcoin(benchScale)
	evs := ds.G.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	st, err := store.Open(b.TempDir(), store.Options{SegmentEvents: 1 << 15})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(evs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := st.Replay(0, func(_ int64, _ temporal.Event) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(evs) {
			b.Fatalf("replayed %d events, want %d", n, len(evs))
		}
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(evs))
	b.ReportMetric(total/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkGraphConstruction measures time-series graph building, the
// substrate cost underlying every experiment.
func BenchmarkGraphConstruction(b *testing.B) {
	for _, ds := range harness.All(benchScale) {
		evs := ds.G.Events()
		b.Run(ds.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewGraphWithNodes(ds.G.NumNodes(), evs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
