package flowmotif

import (
	"flowmotif/internal/store"
)

// Durable-store re-exports: the persistence layer behind flowmotifd
// (internal/store). An EventStore is an append-only, checksummed,
// segmented write-ahead log of interaction events plus engine snapshots;
// it survives crashes (a torn final record is truncated on open) and
// powers out-of-core batch queries — Query streams sealed segments through
// the enumeration in δ-overlapping chunks, producing exactly the
// FindInstances result over histories larger than RAM.
type (
	// EventStore is a durable segmented event store rooted at a directory.
	EventStore = store.Store
	// EventStoreOptions parameterizes an EventStore (segment size, fsync
	// policy, snapshot retention).
	EventStoreOptions = store.Options
	// StoreQueryOptions parameterizes an out-of-core Query (chunking).
	StoreQueryOptions = store.QueryOptions
	// StoreSnapshot is the on-disk snapshot envelope.
	StoreSnapshot = store.Snapshot
	// SegmentStat describes one write-ahead-log segment.
	SegmentStat = store.SegmentStat
)

// OpenEventStore opens (creating if necessary) the event store rooted at
// dir, recovering from any crash-torn write-ahead-log tail.
func OpenEventStore(dir string, opts EventStoreOptions) (*EventStore, error) {
	return store.Open(dir, opts)
}
