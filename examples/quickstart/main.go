// Quickstart walks through the paper's running example (Figures 2, 4 and 7
// of Kosyfaki et al., EDBT 2019) using the public flowmotif API: build the
// small bitcoin user graph of Figure 2, search it for the cyclic motif
// M(3,3), and reproduce the maximal instance of Figure 4(a) and the
// dynamic-programming walkthrough of Table 2.
package main

import (
	"fmt"
	"log"

	"flowmotif"
)

func main() {
	// The interaction network of Figure 2: users u1..u4 (nodes 0..3), each
	// edge annotated (timestamp, flow).
	g, err := flowmotif.NewGraph([]flowmotif.Event{
		{From: 0, To: 1, T: 13, F: 5}, // u1 → u2
		{From: 0, To: 1, T: 15, F: 7},
		{From: 2, To: 0, T: 10, F: 10}, // u3 → u1
		{From: 3, To: 0, T: 1, F: 2},   // u4 → u1
		{From: 3, To: 0, T: 3, F: 5},
		{From: 3, To: 2, T: 11, F: 10}, // u4 → u3
		{From: 1, To: 2, T: 18, F: 20}, // u2 → u3
		{From: 2, To: 3, T: 19, F: 5},  // u3 → u4
		{From: 2, To: 3, T: 21, F: 4},
		{From: 1, To: 3, T: 23, F: 7}, // u2 → u4
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// The cyclic motif M(3,3): flow moves 0 → 1 → 2 and back to 0.
	tri, err := flowmotif.ParseMotif("M(3,3)")
	if err != nil {
		log.Fatal(err)
	}

	// Phase P1: six structural matches (the paper's Figure 6).
	fmt.Printf("structural matches of %v: %d\n", tri, flowmotif.CountStructuralMatches(g, tri))

	// Full search with δ=10, φ=7: exactly the instance of Figure 4(a),
	// [e1←{(10,10)}, e2←{(13,5),(15,7)}, e3←{(18,20)}] with flow 10.
	instances, err := flowmotif.FindInstances(g, tri, flowmotif.Params{Delta: 10, Phi: 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range instances {
		fmt.Printf("maximal instance: nodes=%v flow=%g window=[%d,%d] edge flows=%v\n",
			in.Nodes, in.Flow, in.Start, in.End, in.EdgeFlows)
		if ok, _ := flowmotif.IsMaximal(g, tri, 10, in); !ok {
			log.Fatal("instance unexpectedly non-maximal")
		}
	}

	// Top-1 via the dynamic-programming module (Algorithm 2).
	flow, err := flowmotif.TopOneFlow(g, tri, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DP top-1 flow at δ=10: %g\n", flow)

	// Relaxing φ and ranking instead: the top-3 instances by flow.
	top, err := flowmotif.TopK(g, tri, 10, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, in := range top {
		fmt.Printf("top-%d: nodes=%v flow=%g\n", i+1, in.Nodes, in.Flow)
	}
}
