// Fraudwatch demonstrates the paper's financial-intelligence motivation
// (§1): in a bitcoin-like transaction network, cyclic flow motifs within a
// short window — money leaving an account and returning through
// intermediaries — are a classic laundering signature, and chains of
// significant transfers within limited time match FIU "rapid movement"
// indicators.
//
// The example generates a synthetic transaction network with genuine flow
// cascades, ranks the strongest cyclic instances (the suspects), and shows
// that cyclic flow is statistically over-represented against flow-permuted
// null models.
package main

import (
	"fmt"
	"log"

	"flowmotif"
)

func main() {
	events, err := flowmotif.GenerateBitcoin(flowmotif.BitcoinConfig{
		Nodes:    2000,
		SeedTxns: 10000,
		Duration: 30 * 24 * 3600,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := flowmotif.NewGraph(events)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("transaction network: %d users, %d counterparty pairs, %d transfers, avg %.2f BTC\n",
		st.Nodes, st.ConnectedPairs, st.Events, st.AvgFlow)

	const delta = 3600 // one hour: "paid out and paid back in the same hour"
	cycle, _ := flowmotif.ParseMotif("M(3,3)")

	// Rank the strongest cyclic movements: the top-k instances by flow.
	suspects, err := flowmotif.TopK(g, cycle, delta, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop cyclic flows (δ=%ds):\n", delta)
	for i, in := range suspects {
		fmt.Printf("  #%d users=%v moved %.2f BTC in %ds (edge flows %.5g)\n",
			i+1, in.Nodes, in.Flow, in.End-in.Start, in.EdgeFlows)
	}
	if len(suspects) == 0 {
		fmt.Println("  (no cyclic instances at this δ)")
	}

	// Smurfing-style chains: big aggregate flow along 3-hop chains.
	chain, _ := flowmotif.ParseMotif("M(4,3)")
	chains, err := flowmotif.TopK(g, chain, delta, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop chain flows (δ=%ds):\n", delta)
	for i, in := range chains {
		fmt.Printf("  #%d route=%v moved %.2f BTC\n", i+1, in.Nodes, in.Flow)
	}

	// Are these patterns meaningful, or would any arrangement of the same
	// amounts produce them? Compare with flow-permuted networks (§6.3).
	for _, mo := range []*flowmotif.Motif{cycle, chain} {
		res, err := flowmotif.Significance(g, mo,
			flowmotif.Params{Delta: delta, Phi: 5},
			flowmotif.SignificanceConfig{Runs: 10, Seed: 7, Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsignificance of %v at φ=5: real=%d vs random %.1f±%.1f (z=%.1f, p=%.2f)\n",
			mo, res.Real, res.Mean, res.Std, res.ZScore, res.PValue)
	}
	fmt.Println("\npositive z-scores: the network genuinely transfers flow along these motifs;")
	fmt.Println("permuting amounts destroys the pattern, as the paper observes in Figure 14.")
}
