// Clusterdemo runs a 3-shard motif-serving cluster in one process: a
// coordinator partitions a catalog of motif subscriptions across three
// member engines by rendezvous hashing, broadcasts a synthetic
// bitcoin-like transaction stream to all of them, and serves scatter-
// gather queries. Mid-stream it scales out to a fourth member (live
// subscription handoff), then kills a member outright and lets failover
// re-place its subscriptions, regenerated from the coordinator's
// broadcast history — after which the cluster still serves the complete
// instance set, as the final global top-k shows.
package main

import (
	"fmt"
	"log"
	"sort"

	"flowmotif"
)

func main() {
	events, err := flowmotif.GenerateBitcoin(flowmotif.BitcoinConfig{
		Nodes:    800,
		SeedTxns: 3000,
		Duration: 3 * 24 * 3600,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })

	// A sweep-style workload: several motifs under several (δ, φ) settings
	// — the many-subscription regime a cluster is for.
	var subs []flowmotif.StreamSubscription
	for _, name := range []string{"M(3,3)", "M(4,3)", "M(4,4)A", "M(5,4)", "chain3"} {
		mo, err := flowmotif.ParseMotif(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, delta := range []int64{900, 1800, 7200} {
			subs = append(subs, flowmotif.StreamSubscription{
				ID:    fmt.Sprintf("%s/δ%d", name, delta),
				Motif: mo,
				Delta: delta,
				Phi:   2,
			})
		}
	}

	members := make([]flowmotif.ClusterMember, 3)
	locals := make([]*flowmotif.ClusterLocalMember, 3)
	for i := range members {
		m, err := flowmotif.NewClusterLocalMember(fmt.Sprintf("shard-%d", i), flowmotif.ClusterLocalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		members[i] = m
		locals[i] = m
	}
	c, err := flowmotif.NewCluster(flowmotif.ClusterConfig{Members: members, Subs: subs})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("cluster: 3 shards, %d subscriptions\n", len(subs))
	byOwner := map[string]int{}
	for _, owner := range c.Placement() {
		byOwner[owner]++
	}
	fmt.Printf("placement: %v\n\n", byOwner)

	feed := func(evs []flowmotif.Event, label string) {
		const batch = 512
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			if _, err := c.Ingest(evs[i:end]); err != nil {
				log.Fatal(err)
			}
		}
		st := c.Stats()
		fmt.Printf("%-28s events=%d moves=%d downs=%d\n", label, st.Events, st.Moves, st.Downs)
	}

	third := len(events) / 3
	feed(events[:third], "phase 1 (3 shards):")

	// Scale out: shard-3 joins and wins some subscriptions live.
	m3, err := flowmotif.NewClusterLocalMember("shard-3", flowmotif.ClusterLocalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AddMember(m3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshard-3 joined; %d subscriptions moved onto it\n", c.Stats().Moves)
	feed(events[third:2*third], "phase 2 (4 shards):")

	// Kill shard-0: the next broadcast marks it down, and its
	// subscriptions are regenerated on the survivors from history.
	locals[0].SetDown(true)
	fmt.Printf("\nshard-0 killed\n")
	feed(events[2*third:], "phase 3 (failover):")
	// Ingest acks on append now (async replication pipeline); the drain
	// barrier waits for every survivor to apply the log and reaps the
	// killed shard.
	if err := c.Drain(); err != nil {
		log.Fatal(err)
	}
	for sub, owner := range c.Placement() {
		if owner == "shard-0" {
			log.Fatalf("subscription %s still on the dead shard", sub)
		}
	}

	if _, err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	top, aligned, err := c.TopK("", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal top-%d by instance flow (aligned to watermark %d):\n", len(top), aligned.Watermark)
	for i, d := range top {
		fmt.Printf("  %2d. %-16s flow=%8.2f window=[%d,%d] nodes=%v\n",
			i+1, d.Sub, d.Flow, d.Start, d.End, d.Nodes)
	}
	st := c.Stats()
	fmt.Printf("\nfinal: %d events broadcast, %d subscription moves, %d member(s) failed over\n",
		st.Events, st.Moves, st.Downs)
	for _, m := range st.Members {
		fmt.Printf("  %-8s subs=%-2d watermark_lag=%-3d detections=%d\n",
			m.ID, len(m.Subs), m.Lag, m.Detections)
	}
}
