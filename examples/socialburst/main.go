// Socialburst analyzes a facebook-like interaction network (the paper's
// second dataset): chains of high-intensity interaction within minutes are
// influence-propagation signatures. The example streams instances instead
// of materializing them, works on bucketed (tied) timestamps, and compares
// the significance of chain versus cycle motifs — the paper found chains
// dominate on Facebook (propagation trees), unlike the money networks.
package main

import (
	"fmt"
	"log"

	"flowmotif"
)

func main() {
	events, err := flowmotif.GenerateFacebook(flowmotif.FacebookConfig{
		Nodes:    1200,
		Bursts:   5000,
		Cascades: 3500,
		Duration: 45 * 24 * 3600,
		Seed:     2015,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := flowmotif.NewGraph(events)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("interaction network: %d users, %d pairs, %d bucketed interactions (avg %.2f per bucket)\n",
		st.Nodes, st.ConnectedPairs, st.Events, st.AvgFlow)

	p := flowmotif.Params{Delta: 600, Phi: 3}

	// Stream instances of the reshare-chain motif, tracking the most
	// active propagation path without keeping the full result set.
	chain, _ := flowmotif.ParseMotif("M(4,3)")
	var (
		count   int64
		hottest *flowmotif.Instance
	)
	_, err = flowmotif.EnumerateInstances(g, chain, p, func(in *flowmotif.Instance) bool {
		count++
		if hottest == nil || in.Flow > hottest.Flow {
			hottest = in
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d propagation chains %v at δ=%ds, φ=%g\n", count, chain, p.Delta, p.Phi)
	if hottest != nil {
		fmt.Printf("hottest chain: users %v relayed %g interactions/bucket for %ds\n",
			hottest.Nodes, hottest.Flow, hottest.End-hottest.Start)
	}

	// Chains vs cycles: which pattern is the real signature of this
	// network? (Figure 14's per-network contrast.)
	fmt.Println("\nsignificance vs flow-permuted null (10 runs):")
	for _, name := range []string{"M(3,2)", "M(4,3)", "M(3,3)", "M(4,4)A"} {
		mo, _ := flowmotif.ParseMotif(name)
		res, err := flowmotif.Significance(g, mo, p,
			flowmotif.SignificanceConfig{Runs: 10, Seed: 99, Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		kind := "chain"
		if mo.IsCyclic() {
			kind = "cycle"
		}
		fmt.Printf("  %-8s (%s): real=%-6d random=%.1f±%.1f  z=%.1f\n",
			name, kind, res.Real, res.Mean, res.Std, res.ZScore)
	}
}
