// Passengerflow analyzes a taxi-zone passenger network (the paper's third
// dataset): chains of region-to-region movements within short windows
// reveal commuter corridors. It demonstrates the §5.1 extensibility APIs:
// the top-1 instance per structural match (which zone corridors carry the
// most people) and per window position (when the flow peaks).
package main

import (
	"fmt"
	"log"
	"sort"

	"flowmotif"
)

func main() {
	events, err := flowmotif.GeneratePassenger(flowmotif.PassengerConfig{
		Zones: 120,
		Trips: 15000,
		Days:  7,
		Seed:  2018,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := flowmotif.NewGraph(events)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Stats()
	fmt.Printf("passenger network: %d zones, %d OD pairs, %d trips, avg %.2f passengers\n",
		st.Nodes, st.ConnectedPairs, st.Events, st.AvgFlow)

	const delta = 900                          // 15 minutes, the paper's default for this dataset
	chain, _ := flowmotif.ParseMotif("M(4,3)") // zone → zone → zone → zone

	// How common are chain movements vs. circular ones? (The paper finds
	// acyclic motifs dominate on passenger data.)
	for _, name := range []string{"M(4,3)", "M(4,4)A"} {
		mo, _ := flowmotif.ParseMotif(name)
		n, err := flowmotif.CountInstances(g, mo, flowmotif.Params{Delta: delta, Phi: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s instances (δ=%d, φ=2): %d\n", name, delta, n)
	}

	// Per-match top-1: the corridors (zone sequences) with the heaviest
	// 15-minute passenger relay.
	type corridor struct {
		zones []flowmotif.NodeID
		flow  float64
	}
	var corridors []corridor
	err = flowmotif.TopOnePerMatch(g, chain, delta, func(mt *flowmotif.Match, flow float64) {
		if flow > 0 {
			corridors = append(corridors, corridor{
				zones: append([]flowmotif.NodeID(nil), mt.Nodes...),
				flow:  flow,
			})
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(corridors, func(i, j int) bool { return corridors[i].flow > corridors[j].flow })
	fmt.Println("\nbusiest relay corridors (top-1 instance per structural match):")
	for i := 0; i < len(corridors) && i < 5; i++ {
		fmt.Printf("  %v relayed %.0f passengers within %ds\n", corridors[i].zones, corridors[i].flow, delta)
	}

	// Per-window top-1 on the single busiest corridor: when does it peak?
	if len(corridors) > 0 {
		best := corridors[0]
		fmt.Printf("\npeak windows of corridor %v:\n", best.zones)
		type peak struct {
			start int64
			flow  float64
		}
		var peaks []peak
		err = flowmotif.TopOnePerWindow(g, chain, delta, func(mt *flowmotif.Match, ts int64, flow float64) {
			if flow <= 0 {
				return
			}
			for i := range mt.Nodes {
				if mt.Nodes[i] != best.zones[i] {
					return
				}
			}
			peaks = append(peaks, peak{ts, flow})
		})
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(peaks, func(i, j int) bool { return peaks[i].flow > peaks[j].flow })
		for i := 0; i < len(peaks) && i < 3; i++ {
			day := peaks[i].start / 86400
			hhmm := peaks[i].start % 86400
			fmt.Printf("  day %d %02d:%02d — %.0f passengers\n", day+1, hhmm/3600, (hhmm%3600)/60, peaks[i].flow)
		}
	}
}
