// Streamwatch demonstrates online flow-motif detection: instead of
// building a graph and running batch search, it replays a synthetic
// bitcoin-like transaction stream (internal/gen) through a streaming
// engine in arrival order, watching motif instances fire the moment their
// δ-window closes — the way a fraud-desk daemon (cmd/flowmotifd) would see
// them. At the end it cross-checks the live detections against batch
// FindInstances on the same events: the sets are identical.
package main

import (
	"fmt"
	"log"
	"sort"

	"flowmotif"
)

func main() {
	events, err := flowmotif.GenerateBitcoin(flowmotif.BitcoinConfig{
		Nodes:    1500,
		SeedTxns: 6000,
		Duration: 7 * 24 * 3600,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The generator emits cascades; a stream arrives in time order.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	fmt.Printf("replaying %d transfers over %d days as a live stream\n\n",
		len(events), 7)

	cycle, _ := flowmotif.ParseMotif("M(3,3)")
	chain, _ := flowmotif.ParseMotif("M(4,3)")
	subs := []flowmotif.StreamSubscription{
		{ID: "cycle-1h", Motif: cycle, Delta: 3600, Phi: 5},
		{ID: "chain-30m", Motif: chain, Delta: 1800, Phi: 10},
	}

	// A live ticker sink: print the first few hits per detector as they
	// fire, keep the best by flow for the closing summary.
	top := flowmotif.NewTopKSink(3)
	printed := map[string]int{}
	live := flowmotif.FuncSink(func(d *flowmotif.Detection) {
		if printed[d.Sub] < 3 {
			printed[d.Sub]++
			fmt.Printf("[t=%7d] %-9s users=%v moved %.2f BTC in %ds\n",
				d.DetectedAt, d.Sub, d.Nodes, d.Flow, d.End-d.Start)
		}
	})
	eng, err := flowmotif.NewStreamEngine(
		flowmotif.StreamConfig{Subs: subs},
		flowmotif.MultiSink{live, top},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Feed the stream in hourly ticks, as an exchange's ledger would
	// deliver it.
	const tick = 3600
	for lo := 0; lo < len(events); {
		hi := lo
		end := events[lo].T + tick
		for hi < len(events) && events[hi].T < end {
			hi++
		}
		if _, err := eng.Ingest(events[lo:hi]); err != nil {
			log.Fatal(err)
		}
		lo = hi
	}
	pre := eng.Stats() // snapshot before Flush evicts the tail
	eng.Flush()

	st := eng.Stats()
	fmt.Printf("\nstream ended: %d events in %d batches, %d detections\n",
		st.EventsIngested, st.Batches, st.Detections)
	fmt.Printf("retention at stream end: %d events in memory (%.1f%% of the stream, window-bounded)\n",
		pre.EventsRetained, 100*float64(pre.EventsRetained)/float64(pre.EventsIngested))
	for _, sub := range st.Subs {
		fmt.Printf("  %-9s %5d instances over %d finalized bands\n",
			sub.ID, sub.Detections, sub.Bands)
	}

	fmt.Println("\nstrongest movements seen live:")
	for _, sub := range subs {
		for i, d := range top.Top(sub.ID) {
			fmt.Printf("  %s #%d users=%v flow=%.2f BTC window=[%d,%d]\n",
				sub.ID, i+1, d.Nodes, d.Flow, d.Start, d.End)
		}
	}

	// The punchline: the live detections are exactly the batch results.
	g, err := flowmotif.NewGraph(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncross-check against batch search on the full graph:")
	for _, sub := range subs {
		batch, err := flowmotif.FindInstances(g, sub.Motif,
			flowmotif.Params{Delta: sub.Delta, Phi: sub.Phi})
		if err != nil {
			log.Fatal(err)
		}
		var streamed int64
		for _, ss := range st.Subs {
			if ss.ID == sub.ID {
				streamed = ss.Detections
			}
		}
		verdict := "MATCH"
		if int64(len(batch)) != streamed {
			verdict = "MISMATCH"
		}
		fmt.Printf("  %-9s stream=%d batch=%d  %s\n", sub.ID, streamed, len(batch), verdict)
	}
}
