package flowmotif

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// storeInstKey serializes an instance independently of the graph snapshot
// that produced it (out-of-core instances index per-chunk band graphs).
func storeInstKey(g *Graph, in *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N%v", in.Nodes)
	for i, a := range in.Arcs {
		fmt.Fprintf(&b, "|e%d", i)
		for _, p := range g.Series(a)[in.Spans[i].Start:in.Spans[i].End] {
			fmt.Fprintf(&b, ";%d:%g", p.T, p.F)
		}
	}
	return b.String()
}

// TestEventStoreOutOfCoreEquivalence is the public-API oracle for the
// durable store: a dataset streamed into an EventStore in chunks, then
// queried out-of-core with a small chunk budget, must yield exactly the
// FindInstances result on the fully materialized in-memory graph.
func TestEventStoreOutOfCoreEquivalence(t *testing.T) {
	evs, err := GenerateBitcoin(BitcoinConfig{
		Nodes: 120, SeedTxns: 400, Duration: 15000, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	g, err := NewGraph(evs)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenEventStore(t.TempDir(), EventStoreOptions{SegmentEvents: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < len(evs); i += 128 {
		j := i + 128
		if j > len(evs) {
			j = len(evs)
		}
		if err := st.Append(evs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Seq(); got != int64(len(evs)) {
		t.Fatalf("store holds %d events, want %d", got, len(evs))
	}
	var sealed int
	for _, sg := range st.Segments() {
		if sg.Sealed {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatal("degenerate: no sealed segment, the out-of-core path is untested")
	}

	tri, err := ParseMotif("M(3,3)")
	if err != nil {
		t.Fatal(err)
	}
	chain, err := Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mo *Motif
		p  Params
	}{
		{tri, Params{Delta: 500, Phi: 0}},
		{chain, Params{Delta: 300, Phi: 3}},
	} {
		want, err := FindInstances(g, tc.mo, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := map[string]bool{}
		for _, in := range want {
			wantKeys[storeInstKey(g, in)] = true
		}
		if len(wantKeys) == 0 {
			t.Fatalf("degenerate: no batch instances for %s", tc.mo.Name())
		}

		got := map[string]bool{}
		stats, err := st.Query(tc.mo, tc.p, StoreQueryOptions{ChunkEvents: 111},
			func(bg *Graph, in *Instance) bool {
				got[storeInstKey(bg, in)] = true
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Instances != int64(len(got)) || len(got) != len(wantKeys) {
			t.Fatalf("%s: out-of-core found %d (stats %d), batch found %d",
				tc.mo.Name(), len(got), stats.Instances, len(wantKeys))
		}
		for k := range wantKeys {
			if !got[k] {
				t.Fatalf("%s: missing instance %s", tc.mo.Name(), k)
			}
		}
	}
}
