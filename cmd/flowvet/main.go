// Command flowvet runs the repo's project-specific analyzer suite
// (internal/analysis/checks) over the packages matching the given
// patterns and exits non-zero if any diagnostic survives suppression.
//
// Usage:
//
//	go run ./cmd/flowvet ./...
//	go run ./cmd/flowvet -list
//	go run ./cmd/flowvet -only hotpathclock ./internal/stream/...
//
// Suppress a single finding with a justified in-source comment:
//
//	x := fmt.Sprintf(...) //flowvet:ignore metricname bounded enum, see DESIGN §15
//
// See DESIGN.md §15 for the invariants each analyzer enforces and the
// //flowmotif:hotpath / //flowmotif:obsgate annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flowmotif/internal/analysis/checks"
	"flowmotif/internal/analysis/flowvet"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowvet [-list] [-only name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := checks.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var filtered []*flowvet.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "flowvet: unknown analyzer %q (use -list)\n", n)
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flowvet: %v\n", err)
		os.Exit(2)
	}
	prog, err := flowvet.LoadProgram(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	diags, err := flowvet.Run(prog, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flowvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
