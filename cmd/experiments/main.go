// Command experiments reproduces every table and figure of the paper's
// evaluation section (§6) on the synthetic stand-in datasets, printing
// paper-style tables and optionally writing CSVs.
//
// Usage:
//
//	experiments -scale small -exp all
//	experiments -scale medium -exp table3,fig8,fig14 -workers 8 -out results/
//	experiments -bench-cluster -bench-out BENCH_cluster.json
//	experiments -bench-cluster -bench-baseline BENCH_cluster.json
//
// -bench-cluster skips the paper experiments and instead measures the
// cluster layer (internal/cluster): pipelined-ingest throughput (acked
// and sustained) and scatter-gather query latency on an in-process shard
// set, written as a machine-readable JSON report so perf is tracked
// across PRs. With -bench-baseline the run doubles as a CI regression
// gate: it exits non-zero when a tracked throughput metric drops (or a
// latency metric blows up) beyond -bench-max-regress vs the baseline
// report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/harness"
	"flowmotif/internal/server"
	"flowmotif/internal/stream"
)

func main() {
	var (
		scale      = flag.String("scale", "small", "tiny | small | medium | large")
		exps       = flag.String("exp", "all", "comma list: table3,table4,fig8,fig9,fig10,fig11,fig12,fig13,fig14")
		workers    = flag.Int("workers", 8, "parallel workers for sweep counting and significance")
		runs       = flag.Int("runs", 20, "randomized networks for fig14 (paper: 20)")
		seed       = flag.Int64("seed", 2019, "seed for fig14 permutations")
		outDir     = flag.String("out", "", "directory for CSV output (optional)")
		benchClust = flag.Bool("bench-cluster", false, "run the cluster ingest/scatter-gather benchmark instead of paper experiments")
		benchOut   = flag.String("bench-out", "BENCH_cluster.json", "output path for -bench-cluster (JSON)")
		benchShard = flag.Int("bench-shards", 4, "shard count for -bench-cluster")
		benchEvs   = flag.Int("bench-events", 60000, "stream length for -bench-cluster")
		benchBase  = flag.String("bench-baseline", "", "baseline BENCH_cluster.json to compare against (CI regression gate)")
		benchTol   = flag.Float64("bench-max-regress", 0.30, "fail when a tracked metric regresses by more than this fraction vs -bench-baseline")

		benchStream    = flag.Bool("bench-stream", false, "run the many-subscription streaming ingest benchmark (shared-evaluation planner vs per-subscription baseline)")
		benchStreamOut = flag.String("bench-stream-out", "BENCH_stream.json", "output path for -bench-stream (JSON)")
		benchStreamMin = flag.Float64("bench-stream-min-speedup", 0, "fail unless the shared planner beats the per-sub baseline by at least this factor at 100 shared-shape subscriptions (0: no gate)")
		benchObsMax    = flag.Float64("bench-obs-max-overhead", 0, "fail when metric collection slows ingest by more than this fraction vs the same run with Config.DisableObs (0: no gate)")
		benchTrcMax    = flag.Float64("bench-trace-max-overhead", 0, "fail when flight-recorder span tracing slows ingest by more than this fraction vs the same run with Config.DisableTrace (0: no gate)")
		benchAttMax    = flag.Float64("bench-attrib-max-overhead", 0, "fail when per-subscription cost attribution slows ingest by more than this fraction vs the same run with Config.DisableCostAttribution (0: no gate)")
		benchWireMin   = flag.Float64("bench-wire-min-speedup", 0, "fail unless binary wire ingest beats JSON ingest by at least this factor at batch 512, same run (0: no gate)")
	)
	flag.Parse()

	if *benchStream {
		runStreamBench(*benchStreamOut, *seed, *benchStreamMin, *benchObsMax, *benchTrcMax, *benchAttMax, *benchWireMin)
		return
	}
	if *benchClust {
		runClusterBench(*benchShard, *benchEvs, *seed, *benchOut, *benchBase, *benchTol)
		return
	}

	sc, err := harness.ParseScale(*scale)
	if err != nil {
		fatal(err.Error())
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	fmt.Printf("building datasets at scale %q...\n", sc)
	t0 := time.Now()
	datasets := harness.All(sc)
	motifs := harness.Motifs()
	fmt.Printf("datasets ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	emit := func(name string, t *harness.Table) {
		fmt.Println(t.String())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err.Error())
			}
			f, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fatal(err.Error())
			}
			if err := t.WriteCSV(f); err != nil {
				fatal(err.Error())
			}
			if err := f.Close(); err != nil {
				fatal(err.Error())
			}
		}
	}

	if sel("table3") {
		run("table3", func() { emit("table3", harness.Table3(datasets)) })
	}
	if sel("table4") {
		run("table4", func() { emit("table4", harness.Table4(datasets, motifs)) })
	}
	if sel("fig8") {
		run("fig8", func() { emit("fig8", harness.Fig8(datasets, motifs)) })
	}
	if sel("fig9") {
		run("fig9", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig9(ds, motifs, *workers)
				emit("fig9_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig9_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig10") {
		run("fig10", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig10(ds, motifs, *workers)
				emit("fig10_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig10_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig11") {
		run("fig11", func() {
			for _, ds := range datasets {
				emit("fig11_"+strings.ToLower(ds.Name),
					harness.Fig11(ds, motifs, []int{1, 5, 10, 50, 100, 500}))
			}
		})
	}
	if sel("fig12") {
		run("fig12", func() { emit("fig12", harness.Fig12(datasets, motifs)) })
	}
	if sel("fig13") {
		run("fig13", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig13(ds, motifs, *workers)
				emit("fig13_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig13_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig14") {
		run("fig14", func() {
			for _, ds := range datasets {
				emit("fig14_"+strings.ToLower(ds.Name),
					harness.Fig14(ds, motifs, *runs, *seed, *workers))
			}
		})
	}
}

func run(name string, f func()) {
	t0 := time.Now()
	f()
	fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
}

// runStreamBench measures many-subscription streaming ingest (the
// shared-evaluation planner of DESIGN.md §11 against the per-subscription
// baseline), writes BENCH_stream.json, and optionally gates on the 100-sub
// shared-shape speedup. The speedup is a same-run ratio, so the gate is
// stable across machines (unlike absolute events/sec).
func runStreamBench(out string, seed int64, minSpeedup, maxObsOverhead, maxTraceOverhead, maxAttribOverhead, minWireSpeedup float64) {
	fmt.Println("stream bench: subscription sweep, shared vs distinct shapes, planner vs per-sub baseline...")
	t0 := time.Now()
	rep, err := stream.RunBench(stream.BenchConfig{Seed: seed})
	if err != nil {
		fatal(err.Error())
	}
	fmt.Println("wire bench: JSON transport vs binary wire protocol, same stream, batch 512...")
	rep.Wire, err = server.RunWireBench(0, seed, 0)
	if err != nil {
		fatal(err.Error())
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err.Error())
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		fatal(err.Error())
	}
	for _, r := range rep.Rows {
		fmt.Printf("  %4d subs  %-8s  %-7s  %10.0f events/sec  reuse %5.1f  shared-matches %d\n",
			r.Subs, r.Shapes, r.Planner, r.EventsPerSec, r.SnapshotReuse, r.MatchesShared)
	}
	for _, n := range []string{"1", "10", "100", "1000"} {
		if s, ok := rep.SharedSpeedup[n]; ok {
			fmt.Printf("  shared-shape speedup at %4s subs: %.1fx (planner vs per-sub rebuild)\n", n, s)
		}
	}
	fmt.Printf("wrote %s in %v\n", out, time.Since(t0).Round(time.Millisecond))
	if minSpeedup > 0 {
		s, ok := rep.SharedSpeedup["100"]
		if !ok {
			fatal("bench gate: no 100-subscription shared-shape measurement in the report")
		}
		if s < minSpeedup {
			fatal(fmt.Sprintf("bench regression: shared planner speedup at 100 shared-shape subs is %.2fx, want >= %.2fx", s, minSpeedup))
		}
		fmt.Printf("bench gate ok: %.1fx >= %.1fx at 100 shared-shape subs\n", s, minSpeedup)
	}
	fmt.Printf("obs overhead: %.2f%% (metric collection vs DisableObs, best of %d interleaved runs)\n",
		rep.ObsOverhead*100, rep.ObsOverheadRuns)
	if maxObsOverhead > 0 {
		if rep.ObsOverhead > maxObsOverhead {
			fatal(fmt.Sprintf("obs gate: metric collection costs %.2f%% of ingest throughput, want <= %.2f%%",
				rep.ObsOverhead*100, maxObsOverhead*100))
		}
		fmt.Printf("obs gate ok: %.2f%% <= %.2f%%\n", rep.ObsOverhead*100, maxObsOverhead*100)
	}
	fmt.Printf("trace overhead: %.2f%% (span recording vs DisableTrace, best of %d interleaved runs)\n",
		rep.TraceOverhead*100, rep.TraceOverheadRuns)
	if maxTraceOverhead > 0 {
		if rep.TraceOverhead > maxTraceOverhead {
			fatal(fmt.Sprintf("trace gate: span recording costs %.2f%% of ingest throughput, want <= %.2f%%",
				rep.TraceOverhead*100, maxTraceOverhead*100))
		}
		fmt.Printf("trace gate ok: %.2f%% <= %.2f%%\n", rep.TraceOverhead*100, maxTraceOverhead*100)
	}
	fmt.Printf("attribution overhead: %.2f%% (cost metering vs DisableCostAttribution, best of %d interleaved runs)\n",
		rep.AttribOverhead*100, rep.AttribOverheadRuns)
	if maxAttribOverhead > 0 {
		if rep.AttribOverhead > maxAttribOverhead {
			fatal(fmt.Sprintf("attribution gate: cost metering costs %.2f%% of ingest throughput, want <= %.2f%%",
				rep.AttribOverhead*100, maxAttribOverhead*100))
		}
		fmt.Printf("attribution gate ok: %.2f%% <= %.2f%%\n", rep.AttribOverhead*100, maxAttribOverhead*100)
	}
	fmt.Printf("wire transport: json %.0f events/sec, binary %.0f events/sec — %.1fx (batch %d, best of %d interleaved runs)\n",
		rep.Wire.JSONEventsPerSec, rep.Wire.WireEventsPerSec, rep.Wire.Speedup, rep.Wire.BatchSize, rep.Wire.Runs)
	if minWireSpeedup > 0 {
		if rep.Wire.Speedup < minWireSpeedup {
			fatal(fmt.Sprintf("wire gate: binary ingest is %.2fx JSON at batch %d, want >= %.2fx",
				rep.Wire.Speedup, rep.Wire.BatchSize, minWireSpeedup))
		}
		fmt.Printf("wire gate ok: %.1fx >= %.1fx\n", rep.Wire.Speedup, minWireSpeedup)
	}
}

// runClusterBench measures the cluster layer, writes the JSON report, and
// (with a baseline) gates on throughput/latency regressions.
func runClusterBench(shards, events int, seed int64, out, baseline string, maxRegress float64) {
	fmt.Printf("cluster bench: %d shards, %d events (seed %d)...\n", shards, events, seed)
	t0 := time.Now()
	rep, err := cluster.RunBench(cluster.BenchConfig{
		Shards: shards,
		Events: events,
		Seed:   seed,
	})
	if err != nil {
		fatal(err.Error())
	}
	fmt.Println("wire replication bench: JSON vs binary delivery to a daemon shard set...")
	rep.WireReplication, err = server.RunWireReplicationBench(shards, 0, seed, 0)
	if err != nil {
		fatal(err.Error())
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err.Error())
	}
	payload = append(payload, '\n')
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		fatal(err.Error())
	}
	fmt.Printf("ingest (acked): %.0f events/sec over %d batches (%d detections)\n",
		rep.Ingest.EventsPerSec, rep.Ingest.Batches, rep.Ingest.Detections)
	fmt.Printf("ingest (sustained, incl. drain): %.0f events/sec\n", rep.Ingest.SustainedEventsPerSec)
	fmt.Printf("scatter-gather topk: avg %.0fµs p50 %.0fµs p99 %.0fµs\n",
		rep.TopK.AvgUS, rep.TopK.P50US, rep.TopK.P99US)
	fmt.Printf("scatter-gather instances: avg %.0fµs\n", rep.Instances.AvgUS)
	if w := rep.WireReplication; w != nil {
		fmt.Printf("replication transport: json %.0f events/sec, binary %.0f events/sec — %.1fx sustained\n",
			w.JSONEventsPerSec, w.WireEventsPerSec, w.Speedup)
	}
	if q := rep.Replication.Lag; q != nil {
		fmt.Printf("replication lag (append→ack): p50 %.2fms p95 %.2fms p99 %.2fms\n",
			q.P50*1000, q.P95*1000, q.P99*1000)
	}
	if q := rep.DetectionLag; q != nil {
		fmt.Printf("detection lag (ingest→emit, merged across shards): p50 %.2fms p95 %.2fms p99 %.2fms\n",
			q.P50*1000, q.P95*1000, q.P99*1000)
	}
	fmt.Printf("wrote %s in %v\n", out, time.Since(t0).Round(time.Millisecond))
	if baseline != "" {
		if err := compareClusterBench(baseline, rep, maxRegress); err != nil {
			fatal(err.Error())
		}
	}
}

// compareClusterBench fails (non-nil) when a tracked metric regressed by
// more than maxRegress vs the baseline report. Throughput metrics gate on
// a drop, latency metrics on a rise; metrics absent from the baseline
// (older report shapes) are skipped, so the gate survives schema growth.
func compareClusterBench(path string, rep *cluster.BenchReport, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %v", err)
	}
	var base cluster.BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %v", path, err)
	}
	// The acked-ingest figure is a sub-millisecond wall-clock measurement
	// that swings wildly across machines, so it is NOT compared against
	// the baseline. Its architectural property — pipelined acks decouple
	// from member apply — is checked within this run instead: acked
	// throughput must clearly exceed sustained (a synchronous write path
	// would make them equal).
	if base.Ingest.SustainedEventsPerSec > 0 && rep.Ingest.SustainedEventsPerSec > 0 {
		ratio := rep.Ingest.EventsPerSec / rep.Ingest.SustainedEventsPerSec
		fmt.Printf("bench-compare ingest acked/sustained ratio: %.1fx (want >= 2x: pipelined acks)\n", ratio)
		if ratio < 2 {
			return fmt.Errorf("bench regression: acked ingest (%.4g ev/s) no longer decoupled from sustained apply (%.4g ev/s) — write path gone synchronous?",
				rep.Ingest.EventsPerSec, rep.Ingest.SustainedEventsPerSec)
		}
	}
	type metric struct {
		name       string
		base, got  float64
		higherGood bool
	}
	checks := []metric{
		{"ingest.sustained_events_per_sec", base.Ingest.SustainedEventsPerSec, rep.Ingest.SustainedEventsPerSec, true},
		{"scatter_gather_topk.p99_us", base.TopK.P99US, rep.TopK.P99US, false},
		{"scatter_gather_instances.avg_us", base.Instances.AvgUS, rep.Instances.AvgUS, false},
	}
	var failures []string
	for _, m := range checks {
		if m.base <= 0 {
			continue // metric absent from the baseline
		}
		var regress float64
		tol := maxRegress
		if m.higherGood {
			regress = (m.base - m.got) / m.base
		} else {
			// Micro-latency percentiles jitter hard on shared CI runners;
			// gate them only on a 2x blowup (or the configured tolerance
			// if the operator set it wider).
			regress = (m.got - m.base) / m.base
			if tol < 1.0 {
				tol = 1.0
			}
		}
		status := "ok"
		if regress > tol {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.4g -> %.4g (%.0f%% worse)",
				m.name, m.base, m.got, regress*100))
		}
		fmt.Printf("bench-compare %-34s baseline %12.4g  now %12.4g  [%s]\n", m.name, m.base, m.got, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression vs %s (tolerance %.0f%%):\n  %s",
			path, maxRegress*100, strings.Join(failures, "\n  "))
	}
	fmt.Printf("bench-compare: within %.0f%% tolerance of %s\n", maxRegress*100, path)
	return nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "experiments:", msg)
	os.Exit(1)
}
