// Command experiments reproduces every table and figure of the paper's
// evaluation section (§6) on the synthetic stand-in datasets, printing
// paper-style tables and optionally writing CSVs.
//
// Usage:
//
//	experiments -scale small -exp all
//	experiments -scale medium -exp table3,fig8,fig14 -workers 8 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flowmotif/internal/harness"
)

func main() {
	var (
		scale   = flag.String("scale", "small", "tiny | small | medium | large")
		exps    = flag.String("exp", "all", "comma list: table3,table4,fig8,fig9,fig10,fig11,fig12,fig13,fig14")
		workers = flag.Int("workers", 8, "parallel workers for sweep counting and significance")
		runs    = flag.Int("runs", 20, "randomized networks for fig14 (paper: 20)")
		seed    = flag.Int64("seed", 2019, "seed for fig14 permutations")
		outDir  = flag.String("out", "", "directory for CSV output (optional)")
	)
	flag.Parse()

	sc, err := harness.ParseScale(*scale)
	if err != nil {
		fatal(err.Error())
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	fmt.Printf("building datasets at scale %q...\n", sc)
	t0 := time.Now()
	datasets := harness.All(sc)
	motifs := harness.Motifs()
	fmt.Printf("datasets ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	emit := func(name string, t *harness.Table) {
		fmt.Println(t.String())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err.Error())
			}
			f, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fatal(err.Error())
			}
			if err := t.WriteCSV(f); err != nil {
				fatal(err.Error())
			}
			if err := f.Close(); err != nil {
				fatal(err.Error())
			}
		}
	}

	if sel("table3") {
		run("table3", func() { emit("table3", harness.Table3(datasets)) })
	}
	if sel("table4") {
		run("table4", func() { emit("table4", harness.Table4(datasets, motifs)) })
	}
	if sel("fig8") {
		run("fig8", func() { emit("fig8", harness.Fig8(datasets, motifs)) })
	}
	if sel("fig9") {
		run("fig9", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig9(ds, motifs, *workers)
				emit("fig9_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig9_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig10") {
		run("fig10", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig10(ds, motifs, *workers)
				emit("fig10_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig10_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig11") {
		run("fig11", func() {
			for _, ds := range datasets {
				emit("fig11_"+strings.ToLower(ds.Name),
					harness.Fig11(ds, motifs, []int{1, 5, 10, 50, 100, 500}))
			}
		})
	}
	if sel("fig12") {
		run("fig12", func() { emit("fig12", harness.Fig12(datasets, motifs)) })
	}
	if sel("fig13") {
		run("fig13", func() {
			for _, ds := range datasets {
				ins, tim := harness.Fig13(ds, motifs, *workers)
				emit("fig13_instances_"+strings.ToLower(ds.Name), ins)
				emit("fig13_time_"+strings.ToLower(ds.Name), tim)
			}
		})
	}
	if sel("fig14") {
		run("fig14", func() {
			for _, ds := range datasets {
				emit("fig14_"+strings.ToLower(ds.Name),
					harness.Fig14(ds, motifs, *runs, *seed, *workers))
			}
		})
	}
}

func run(name string, f func()) {
	t0 := time.Now()
	f()
	fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "experiments:", msg)
	os.Exit(1)
}
