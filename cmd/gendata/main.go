// Command gendata synthesizes the benchmark interaction networks (the
// stand-ins for the paper's Bitcoin, Facebook and Passenger datasets; see
// DESIGN.md §4) and writes them as CSV or binary snapshots.
//
// Usage:
//
//	gendata -kind bitcoin   -scale small  -o bitcoin.csv
//	gendata -kind facebook  -scale medium -o facebook.bin
//	gendata -kind passenger -seed 7 -o passenger.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flowmotif/internal/dataset"
	"flowmotif/internal/gen"
	"flowmotif/internal/harness"
	"flowmotif/internal/temporal"
)

func main() {
	var (
		kind  = flag.String("kind", "bitcoin", "bitcoin | facebook | passenger")
		scale = flag.String("scale", "small", "tiny | small | medium | large")
		seed  = flag.Int64("seed", 0, "override the generator seed (0 = dataset default)")
		out   = flag.String("o", "", "output path (.csv, .tsv or .bin)")
		quiet = flag.Bool("q", false, "suppress the statistics summary")
	)
	flag.Parse()
	if *out == "" {
		fatal("missing -o output path")
	}
	sc, err := harness.ParseScale(*scale)
	if err != nil {
		fatal(err.Error())
	}

	var evs []temporal.Event
	switch strings.ToLower(*kind) {
	case "bitcoin":
		ds := harness.Bitcoin(sc)
		evs = regenerate(ds, *seed, func(s int64) ([]temporal.Event, error) {
			cfg := gen.BitcoinConfig{Seed: s}
			st := ds.G.Stats()
			cfg.Nodes = st.Nodes
			// Approximate the preset scale through the seed-transaction
			// count; cascades add the rest.
			cfg.SeedTxns = st.Events * 2 / 3
			return gen.Bitcoin(cfg)
		})
	case "facebook":
		ds := harness.Facebook(sc)
		evs = regenerate(ds, *seed, func(s int64) ([]temporal.Event, error) {
			cfg := gen.FacebookConfig{Seed: s, Nodes: ds.G.NumNodes()}
			cfg.Bursts = ds.G.NumEvents() / 6
			cfg.Cascades = ds.G.NumEvents() / 10
			return gen.Facebook(cfg)
		})
	case "passenger":
		ds := harness.Passenger(sc)
		evs = regenerate(ds, *seed, func(s int64) ([]temporal.Event, error) {
			cfg := gen.PassengerConfig{Seed: s, Zones: ds.G.NumNodes()}
			cfg.Trips = ds.G.NumEvents() * 2 / 3
			return gen.Passenger(cfg)
		})
	default:
		fatal("unknown -kind " + *kind)
	}

	if strings.HasSuffix(*out, ".bin") {
		err = dataset.WriteBinaryFile(*out, evs)
	} else {
		err = dataset.WriteCSVFile(*out, evs, nil)
	}
	if err != nil {
		fatal(err.Error())
	}
	if !*quiet {
		g, err := temporal.NewGraph(evs)
		if err != nil {
			fatal(err.Error())
		}
		st := g.Stats()
		fmt.Printf("%s (%s) -> %s: nodes=%d pairs=%d events=%d avgflow=%.4g span=[%d,%d]\n",
			*kind, *scale, *out, st.Nodes, st.ConnectedPairs, st.Events, st.AvgFlow, st.MinT, st.MaxT)
	}
}

// regenerate either reuses the cached preset dataset (seed 0) or rebuilds
// with a custom seed at roughly the preset scale.
func regenerate(ds *harness.Dataset, seed int64, build func(int64) ([]temporal.Event, error)) []temporal.Event {
	if seed == 0 {
		return ds.G.Events()
	}
	evs, err := build(seed)
	if err != nil {
		fatal(err.Error())
	}
	return evs
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "gendata:", msg)
	os.Exit(1)
}
