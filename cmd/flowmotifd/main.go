// Command flowmotifd is the flow-motif serving daemon: it ingests
// interaction events as they occur and detects flow-motif instances online
// (Kosyfaki et al., EDBT 2019, computed incrementally over a sliding
// δ-retention window), serving detections over an HTTP/JSON API.
//
// Usage:
//
//	flowmotifd -addr :8089 -sub "M(3,3):600:5" -sub "chain3:300:0" \
//	           [-workers N] [-data-dir DIR [-snapshot-every 5m] [-fsync]]
//	flowmotifd -member -addr :8090 [-data-dir DIR]           # cluster shard
//	flowmotifd -cluster-coordinator -shards 3 -sub ...       # local cluster
//	flowmotifd -cluster-coordinator -join m1=http://h1:8090 \
//	           -join m2=http://h2:8090 -sub ...              # remote cluster
//
// Each -sub registers one detector as motif:delta:phi, where motif is a
// catalog name ("M(4,4)B"), "chainN"/"cycleN", or a spanning path
// ("0-1-2-0"); delta is the window duration δ and phi the per-edge-set
// minimum flow φ (optional, default 0). The subscription id served by the
// API is "motif/δ/φ" unless -sub is given as id=motif:delta:phi.
//
// Cluster roles (see internal/cluster and DESIGN.md §9–10): -member starts
// an empty shard whose subscriptions a coordinator places at runtime over
// POST /cluster/add-sub and /cluster/remove-sub. -cluster-coordinator
// starts a coordinator that shards the -sub set across its members by
// rendezvous hashing, replicates ingest to all of them through an
// asynchronous sequence-numbered pipeline (acks on log append; -queue-depth
// bounds each member's backlog before ingest backpressures, and
// -coalesce-events caps how much of a backlog is folded into one member
// call), scatter-gathers queries, and fails members over when they stop
// answering; members come from repeated -join id=url flags (remote
// daemons), from -shards N (in-process engines, each with its own data dir
// under -data-dir), or both. The coordinator serves the same data-plane
// API as a single daemon, plus POST /members/add, /members/remove and
// /members/fail.
//
// With -pprof-addr the daemon serves net/http/pprof on a separate, opt-in
// listener, so the streaming hot path can be profiled in situ (CPU, heap,
// mutex) without exposing the profiler on the public API address.
//
// With -data-dir the daemon is durable: every acknowledged batch lands in
// a segmented write-ahead log, engine state is checkpointed periodically
// (-snapshot-every), on POST /snapshot, and on graceful shutdown, and a
// restart recovers the exact pre-crash state — snapshot plus WAL-tail
// replay (see internal/store and DESIGN.md §8).
//
// API (see internal/server):
//
//	POST /ingest    {"events":[{"from":0,"to":1,"t":10,"f":5}, ...]}
//	POST /flush     close all still-open windows
//	POST /snapshot  checkpoint engine + sink state (durable mode)
//	GET  /instances?sub=ID&limit=N
//	GET  /topk?sub=ID&k=N
//	GET  /subs | /stats | /healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flowmotif/internal/cluster"
	"flowmotif/internal/motif"
	"flowmotif/internal/obs"
	"flowmotif/internal/server"
	"flowmotif/internal/stream"
)

// newLogger builds the daemon's structured logger from -log-level and
// -log-format.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// fatal logs the error and exits (slog has no Fatal level).
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// subFlags collects repeated -sub arguments.
type subFlags []stream.Subscription

func (s *subFlags) String() string { return fmt.Sprintf("%d subscriptions", len(*s)) }

func (s *subFlags) Set(v string) error {
	sub, err := parseSub(v)
	if err != nil {
		return err
	}
	*s = append(*s, sub)
	return nil
}

// joinFlags collects repeated -join arguments ("id=url" or a bare URL,
// which takes its host:port as the member id).
type joinFlags []struct{ id, url string }

func (j *joinFlags) String() string { return fmt.Sprintf("%d members", len(*j)) }

func (j *joinFlags) Set(v string) error {
	id, u, ok := strings.Cut(v, "=")
	if !ok {
		u = v
		id = strings.TrimPrefix(strings.TrimPrefix(v, "http://"), "https://")
	}
	id, u = strings.TrimSpace(id), strings.TrimSpace(u)
	if id == "" || u == "" {
		return fmt.Errorf("join %q: want id=url", v)
	}
	*j = append(*j, struct{ id, url string }{id, u})
	return nil
}

// parseSub parses "[id=]motif:delta[:phi]".
func parseSub(v string) (stream.Subscription, error) {
	var sub stream.Subscription
	spec := v
	if id, rest, ok := strings.Cut(v, "="); ok {
		sub.ID = strings.TrimSpace(id)
		spec = rest
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return sub, fmt.Errorf("subscription %q: want [id=]motif:delta[:phi]", v)
	}
	mo, err := motif.Parse(parts[0])
	if err != nil {
		return sub, fmt.Errorf("subscription %q: %w", v, err)
	}
	delta, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil || delta < 0 {
		return sub, fmt.Errorf("subscription %q: bad delta %q", v, parts[1])
	}
	phi := 0.0
	if len(parts) == 3 {
		phi, err = strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || phi < 0 {
			return sub, fmt.Errorf("subscription %q: bad phi %q", v, parts[2])
		}
	}
	sub.Motif = mo
	sub.Delta = delta
	sub.Phi = phi
	if sub.ID == "" {
		sub.ID = fmt.Sprintf("%s/%d/%g", mo.Name(), delta, phi)
	}
	return sub, nil
}

func main() {
	var subs subFlags
	var joins joinFlags
	var (
		addr     = flag.String("addr", ":8089", "listen address")
		wireAddr = flag.String("wire-addr", "", "also serve the binary wire-protocol ingest listener on this TCP address (e.g. :9089); advertised on /healthz so coordinators upgrade replication automatically (empty disables)")
		workers  = flag.Int("workers", 1, "per-band enumeration parallelism")
		recent   = flag.Int("recent", 4096, "recent-detection ring capacity (GET /instances)")
		topk     = flag.Int("topk", 50, "retained best detections per subscription (GET /topk)")
		slack    = flag.Int64("slack", 0, "extra event retention beyond the algorithmic minimum")
		dataDir  = flag.String("data-dir", "", "durable mode: WAL + snapshot directory (empty: in-memory only)")
		fsync    = flag.Bool("fsync", false, "fsync the WAL after every acknowledged batch (with -data-dir)")
		segEvs   = flag.Int("segment-events", 0, "events per WAL segment before sealing (0: default)")
		snapEach = flag.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval (with -data-dir; 0 disables)")
		member   = flag.Bool("member", false, "cluster shard: start with no subscriptions and serve /cluster handoff endpoints")
		coord    = flag.Bool("cluster-coordinator", false, "coordinator: shard -sub set across members, broadcast ingest, scatter-gather queries")
		shards   = flag.Int("shards", 0, "coordinator: run N in-process member engines (per-shard data dirs under -data-dir)")
		histCap  = flag.Int("history-limit", 0, "coordinator: bound retained broadcast history in events (0: unlimited; bounds failover regeneration)")
		queueCap = flag.Int("queue-depth", 0, "coordinator: per-member replication queue depth in batches before ingest backpressures (0: default 128)")
		coalesce = flag.Int("coalesce-events", 0, "coordinator: max events folded into one member call when a replication backlog drains (0: default 2048)")
		pprofAdr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) for in-situ profiling of the ingest hot path; empty disables")
		logLevel = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		logFmt   = flag.String("log-format", "text", "structured log format: text or json")
		slowRnd  = flag.Duration("slow-round", 0, "warn when one finalize round exceeds this duration, with a per-stage breakdown (0 disables)")
		slowReq  = flag.Duration("slow-request", 0, "tail-sample HTTP requests slower than this: retain the trace in the flight recorder and warn with its trace ID (0 disables)")
		noAttrib = flag.Bool("no-cost-attribution", false, "disable per-subscription cost attribution (/debug/top and the *_cost_seconds_total counters go dark)")
		lagSLO   = flag.Duration("lag-slo", 0, "detection-lag SLO threshold: run the burn-rate watchdog, alert and degrade /healthz when lag past this burns the error budget too fast (0 disables)")
		sloTgt   = flag.Float64("lag-slo-target", 0.99, "SLO target good fraction for the burn-rate watchdog (with -lag-slo)")
		burnWarn = flag.Float64("slo-burn-warn", 2, "burn-rate multiple that trips the SLO watchdog when both the fast and slow windows exceed it (with -lag-slo)")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Var(&subs, "sub", `motif subscription "[id=]motif:delta[:phi]" (repeatable)`)
	flag.Var(&joins, "join", `coordinator: member daemon "id=http://host:port" (repeatable)`)
	flag.Parse()

	if *version {
		fmt.Printf("flowmotifd %s %s\n", obs.Version, runtime.Version())
		return
	}

	logger, err := newLogger(*logLevel, *logFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flowmotifd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *pprofAdr != "" {
		// Opt-in profiling endpoint on its own listener and mux, so the
		// profiler never rides on (or leaks through) the public API address.
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening (opt-in; keep this address private)", "addr", *pprofAdr)
			ps := &http.Server{Addr: *pprofAdr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := ps.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server", "err", err)
			}
		}()
	}

	if *coord {
		runCoordinator(coordOptions{
			addr: *addr, subs: subs, joins: joins, shards: *shards,
			workers: *workers, recent: *recent, topk: *topk,
			dataDir: *dataDir, fsync: *fsync, histCap: *histCap,
			queueDepth: *queueCap, coalesce: *coalesce,
			logger: logger, slowReq: *slowReq,
		})
		return
	}

	if len(subs) == 0 && !*member {
		fmt.Fprintln(os.Stderr, `flowmotifd: at least one -sub required (or -member), e.g. -sub "M(3,3):600:5"`)
		flag.Usage()
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Subs:          subs,
		Workers:       *workers,
		Slack:         *slack,
		Recent:        *recent,
		TopK:          *topk,
		DataDir:       *dataDir,
		SyncWrites:    *fsync,
		SegmentEvents: *segEvs,
		Member:        *member,
		Logger:        logger,
		SlowRound:     *slowRnd,
		SlowRequest:   *slowReq,

		DisableCostAttribution: *noAttrib,

		SLO: server.SLOConfig{
			LagSLO:    *lagSLO,
			LagTarget: *sloTgt,
			BurnWarn:  *burnWarn,
		},
	})
	if err != nil {
		fatal(logger, "startup failed", "err", err)
	}

	for _, sub := range srv.Engine().Subscriptions() {
		logger.Info("detector", "sub", sub.ID, "motif", fmt.Sprint(sub.Motif), "delta", sub.Delta, "phi", sub.Phi)
	}
	if *member {
		logger.Info("cluster member mode: awaiting subscription placement")
	}
	if *lagSLO > 0 {
		logger.Info("slo watchdog armed", "lag_slo", *lagSLO, "target", *sloTgt, "burn_warn", *burnWarn)
	}
	if srv.Durable() {
		rec := srv.Recovery()
		logger.Info("durable", "data_dir", *dataDir, "fsync", *fsync)
		if rec.FromSnapshot || rec.Replayed > 0 {
			logger.Info("recovered", "snapshot_seq", rec.SnapshotSeq,
				"snapshot_used", rec.FromSnapshot, "wal_events_replayed", rec.Replayed)
		}
	}
	if *wireAddr != "" {
		bound, err := srv.StartWire(*wireAddr)
		if err != nil {
			fatal(logger, "wire listener failed", "err", err)
		}
		logger.Info("wire protocol listening", "addr", bound)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan struct{})
	stopSnaps := make(chan struct{})
	if srv.Durable() && *snapEach > 0 {
		go func() {
			tick := time.NewTicker(*snapEach)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if seq, err := srv.Snapshot(); err != nil {
						logger.Error("snapshot failed", "err", err)
					} else {
						logger.Info("snapshot", "seq", seq)
					}
				case <-stopSnaps:
					return
				}
			}
		}()
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(done)
	}()

	logger.Info("flowmotifd listening", "addr", *addr, "detectors", len(subs))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, "serve failed", "err", err)
	}
	<-done
	close(stopSnaps)
	srv.StopWire()
	if srv.Durable() {
		// Flush a final snapshot so the next start replays no WAL tail.
		if err := srv.Close(); err != nil {
			logger.Error("final snapshot/close", "err", err)
		} else {
			logger.Info("final snapshot flushed")
		}
	}
	st := srv.Engine().Stats()
	logger.Info("final", "events_ingested", st.EventsIngested, "detections", st.Detections)
}

// coordOptions carries the cluster-coordinator role's flag set.
type coordOptions struct {
	addr       string
	subs       subFlags
	joins      joinFlags
	shards     int
	workers    int
	recent     int
	topk       int
	dataDir    string
	fsync      bool
	histCap    int
	queueDepth int
	coalesce   int
	logger     *slog.Logger
	slowReq    time.Duration
}

// runCoordinator starts the cluster-coordinator role: -shards in-process
// members and/or -join remote member daemons behind one coordinator
// serving the flowmotifd API, with pipelined (asynchronous) replication
// to the members.
func runCoordinator(o coordOptions) {
	addr, subs, joins, logger := o.addr, o.subs, o.joins, o.logger
	if len(subs) == 0 {
		fatal(logger, "coordinator needs at least one -sub")
	}
	if o.shards <= 0 && len(joins) == 0 {
		fatal(logger, "coordinator needs members: -shards N and/or -join id=url")
	}
	var members []cluster.Member
	var locals []*cluster.LocalMember
	for i := 0; i < o.shards; i++ {
		opts := cluster.LocalOptions{Workers: o.workers, Recent: o.recent, TopK: o.topk, SyncWrites: o.fsync}
		if o.dataDir != "" {
			opts.DataDir = filepath.Join(o.dataDir, fmt.Sprintf("shard-%d", i))
		}
		lm, err := cluster.NewLocalMember(fmt.Sprintf("shard-%d", i), opts)
		if err != nil {
			fatal(logger, "shard start failed", "shard", i, "err", err)
		}
		members = append(members, lm)
		locals = append(locals, lm)
	}
	for _, j := range joins {
		members = append(members, cluster.NewHTTPMember(j.id, j.url, nil))
	}
	c, err := cluster.New(cluster.Config{
		Members:        members,
		Subs:           subs,
		HistoryLimit:   o.histCap,
		MaxPending:     o.queueDepth,
		CoalesceEvents: o.coalesce,
	})
	if err != nil {
		fatal(logger, "cluster start failed", "err", err)
	}
	for sub, owner := range c.Placement() {
		logger.Info("placed", "sub", sub, "member", owner)
	}
	if o.histCap <= 0 {
		logger.Warn("history unbounded: the full broadcast stream is retained in memory for lossless failover; bound it with -history-limit N (failover then regenerates only the newest N events)")
	}

	cs := server.NewCoordinatorWith(c, server.CoordinatorConfig{
		Logger:      logger,
		SlowRequest: o.slowReq,
	})
	hs := &http.Server{
		Addr:              addr,
		Handler:           cs.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("coordinator shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(done)
	}()
	logger.Info("flowmotifd coordinator listening", "addr", addr,
		"members", len(members), "subscriptions", len(subs))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(logger, "serve failed", "err", err)
	}
	<-done
	// Push every acknowledged batch through to the members before the
	// shard WALs close — an ingest ack means "durable in the log", so
	// shutdown must not strand the log's tail.
	if err := c.Drain(); err != nil {
		logger.Error("drain on shutdown", "err", err)
	}
	c.Close()
	for _, lm := range locals {
		if err := lm.Close(); err != nil {
			logger.Error("shard close", "shard", lm.ID(), "err", err)
		}
	}
	st := c.Stats()
	logger.Info("final", "events_replicated", st.Events, "moves", st.Moves, "downs", st.Downs)
}
