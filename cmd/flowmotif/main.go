// Command flowmotif searches a temporal interaction network for flow-motif
// instances (Kosyfaki et al., EDBT 2019).
//
// Usage:
//
//	flowmotif find   -i graph.csv -motif "M(3,3)" -delta 600 -phi 5 [-limit 20] [-workers N]
//	flowmotif count  -i graph.csv -motif chain3 -delta 600 -phi 5 [-workers N]
//	flowmotif topk   -i graph.csv -motif "0-1-2-0" -delta 600 -k 10
//	flowmotif top1   -i graph.csv -motif cycle3 -delta 600
//	flowmotif matches -i graph.csv -motif "M(4,3)"
//	flowmotif stats  -i graph.csv
//	flowmotif signif -i graph.csv -motif "M(3,3)" -delta 600 -phi 5 -runs 20 [-workers N]
//
// The input is CSV/TSV with records from,to,time,flow (string node ids are
// interned; pass -numeric for integer ids) or a .bin snapshot written by
// gendata.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flowmotif/internal/core"
	"flowmotif/internal/dataset"
	"flowmotif/internal/match"
	"flowmotif/internal/motif"
	"flowmotif/internal/signif"
	"flowmotif/internal/temporal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		input   = fs.String("i", "", "input dataset (.csv, .tsv or .bin)")
		motifS  = fs.String("motif", "M(3,3)", `motif: catalog name, "chainN", "cycleN" or a path like 0-1-2-0`)
		delta   = fs.Int64("delta", 600, "duration constraint δ")
		phi     = fs.Float64("phi", 0, "flow constraint φ")
		k       = fs.Int("k", 10, "top-k result size")
		limit   = fs.Int("limit", 20, "maximum instances to print (0 = all)")
		workers = fs.Int("workers", 1, "parallel workers")
		runs    = fs.Int("runs", 20, "randomized networks for signif")
		seed    = fs.Int64("seed", 1, "random seed for signif")
		numeric = fs.Bool("numeric", false, "node ids are integers (skip interning)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *input == "" {
		fatal("missing -i input file")
	}

	evs, interner, err := dataset.Load(*input, dataset.CSVOptions{NumericIDs: *numeric})
	check(err)
	g, err := temporal.NewGraph(evs)
	check(err)
	label := func(id temporal.NodeID) string {
		if interner != nil {
			return interner.Label(id)
		}
		return fmt.Sprintf("%d", id)
	}

	if cmd == "stats" {
		st := g.Stats()
		fmt.Printf("nodes:            %d\n", st.Nodes)
		fmt.Printf("connected pairs:  %d\n", st.ConnectedPairs)
		fmt.Printf("events:           %d\n", st.Events)
		fmt.Printf("avg flow/event:   %.4g\n", st.AvgFlow)
		fmt.Printf("time span:        [%d, %d]\n", st.MinT, st.MaxT)
		fmt.Printf("avg series len:   %.3g (max %d)\n", st.AvgSeriesLen, st.MaxSeriesLen)
		fmt.Printf("self loops:       %d\n", st.SelfLoops)
		return
	}

	mo, err := motif.Parse(*motifS)
	check(err)
	p := core.Params{Delta: *delta, Phi: *phi, Workers: *workers}
	start := time.Now()

	switch cmd {
	case "find":
		n := 0
		var printErr error
		_, err := core.Enumerate(g, mo, p, func(in *core.Instance) bool {
			n++
			if *limit <= 0 || n <= *limit {
				printInstance(g, mo, in, label)
			}
			return true
		})
		check(err)
		check(printErr)
		fmt.Printf("%d instances of %v (δ=%d, φ=%g) in %v\n", n, mo, *delta, *phi, time.Since(start).Round(time.Millisecond))
	case "count":
		n, st, err := core.Count(g, mo, p)
		check(err)
		fmt.Printf("%d instances of %v (δ=%d, φ=%g) in %v\n", n, mo, *delta, *phi, time.Since(start).Round(time.Millisecond))
		fmt.Printf("matches=%d anchors=%d windows=%d skipped=%d phi-pruned=%d\n",
			st.Matches, st.Anchors, st.WindowsProcessed, st.WindowsSkipped, st.PhiPruned)
	case "topk":
		res, _, err := core.TopK(g, mo, *delta, *k, *workers)
		check(err)
		for i, in := range res {
			fmt.Printf("#%d ", i+1)
			printInstance(g, mo, in, label)
		}
		fmt.Printf("top-%d of %v (δ=%d) in %v\n", *k, mo, *delta, time.Since(start).Round(time.Millisecond))
	case "top1":
		flow, in, err := core.TopOneDPInstance(g, mo, *delta)
		check(err)
		if in == nil {
			fmt.Printf("no instance of %v within δ=%d\n", mo, *delta)
			return
		}
		fmt.Printf("max flow %.6g (DP module) in %v\n", flow, time.Since(start).Round(time.Millisecond))
		printInstance(g, mo, in, label)
	case "matches":
		n := match.Count(g, mo)
		fmt.Printf("%d structural matches of %v in %v\n", n, mo, time.Since(start).Round(time.Millisecond))
	case "signif":
		res, err := signif.Evaluate(g, mo, p, signif.Config{Runs: *runs, Seed: *seed, Workers: *workers})
		check(err)
		fmt.Printf("motif %v: real=%d random mean=%.4g std=%.4g z=%.4g p=%.4g\n",
			mo, res.Real, res.Mean, res.Std, res.ZScore, res.PValue)
		fmt.Printf("box: min=%.4g q1=%.4g median=%.4g q3=%.4g max=%.4g\n",
			res.Box.Min, res.Box.Q1, res.Box.Median, res.Box.Q3, res.Box.Max)
	default:
		usage()
		os.Exit(2)
	}
}

func printInstance(g *temporal.Graph, mo *motif.Motif, in *core.Instance, label func(temporal.NodeID) string) {
	fmt.Printf("flow=%.6g span=[%d,%d] nodes=[", in.Flow, in.Start, in.End)
	for i, n := range in.Nodes {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(label(n))
	}
	fmt.Print("]")
	for e := 0; e < mo.NumEdges(); e++ {
		s := g.Series(in.Arcs[e])
		fmt.Printf(" e%d←{", e+1)
		for j := in.Spans[e].Start; j < in.Spans[e].End; j++ {
			if j > in.Spans[e].Start {
				fmt.Print(",")
			}
			fmt.Printf("(%d,%g)", s[j].T, s[j].F)
		}
		fmt.Print("}")
	}
	fmt.Println()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flowmotif <find|count|topk|top1|matches|stats|signif> -i input [flags]")
	fmt.Fprintln(os.Stderr, "run 'flowmotif <cmd> -h' for command flags")
}

func check(err error) {
	if err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "flowmotif:", msg)
	os.Exit(1)
}
