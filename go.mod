module flowmotif

go 1.24
